"""Admission control for the copy path: queue, shed, or reject (§4.5).

The paper meters *copy length* across cgroups precisely because a
saturated copy path starves clients; queueing studies of cloud server
overload (request cloning under processor sharing, PAPERS.md) show that
admission control and shedding — not deeper queues — preserve tail
latency.  This module is the Copier reproduction's overload valve: every
``submit_copy`` consults the service's :class:`AdmissionController`,
which can

* **admit** the task onto the CSH rings (the normal path),
* **shed** it to a bounded-latency synchronous copy executed in the
  submitter's own context (mirroring the paper's sync escape hatch:
  ``user_memcpy`` semantics, same bytes, no service involvement), or
* **reject** it with a typed :class:`~repro.copier.errors.AdmissionReject`
  so the application can apply its own backpressure.

Built-in policies (select per service, or machine-wide with the
``COPIER_ADMISSION`` environment variable):

* ``"always"`` (default) — admit everything; the pre-overload behaviour.
* ``"queue-depth"`` — shed once a client's outstanding backlog crosses a
  watermark fraction of its ring capacity; optionally reject past a
  second, higher watermark.
* ``"deadline-feasible"`` — admit only work the service can plausibly
  finish: a task whose deadline cannot be met given the client's current
  backlog and the engine's sustained rate is shed immediately (the
  submitter gets the bytes *now*, synchronously, instead of a guaranteed
  deadline miss later), and per-client/per-cgroup token buckets keyed
  off :class:`~repro.copier.sched.CopierScheduler` shares bound each
  client's sustained async admission rate under saturation.

Shedding is only legal when it cannot reorder against in-flight work:
a task whose source or destination overlaps an unfinished earlier task
must flow through the queues so dependency tracking (§4.2) serializes
it.  Lazy tasks are never shed — deferral and absorption are the point
of lazy submission.  All policies admit freely while the client is
unsaturated, so an idle machine behaves exactly as before.
"""

import os

#: Admission decisions returned by :meth:`AdmissionPolicy.decide`.
ADMIT = "admit"
SHED = "shed"
REJECT = "reject"

#: Outstanding backlog (bytes) below which every policy admits without
#: further checks — admission control is an overload valve, not a tax on
#: the unloaded path.
DEFAULT_SATURATION_BYTES = 256 * 1024


class TokenBucket:
    """A byte-metered token bucket on the simulated clock."""

    __slots__ = ("env", "rate", "burst", "tokens", "last_refill")

    def __init__(self, env, rate_bytes_per_cycle, burst_bytes):
        if rate_bytes_per_cycle <= 0 or burst_bytes <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.env = env
        self.rate = rate_bytes_per_cycle
        self.burst = burst_bytes
        self.tokens = float(burst_bytes)
        self.last_refill = env.now

    def _refill(self):
        now = self.env.now
        if now > self.last_refill:
            self.tokens = min(self.burst,
                              self.tokens + (now - self.last_refill) * self.rate)
            self.last_refill = now

    def peek(self):
        self._refill()
        return self.tokens

    def consume(self, nbytes):
        """Take ``nbytes`` of tokens; False (and no deduction) if short."""
        self._refill()
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            return True
        return False


class AdmissionPolicy:
    """Strategy interface: one decision per submission."""

    name = "policy"

    def decide(self, controller, client, task):
        return ADMIT

    def __repr__(self):
        return "<%s %r>" % (type(self).__name__, self.name)


class AlwaysAdmit(AdmissionPolicy):
    """Admit everything — the pre-overload-protection behaviour."""

    name = "always"


class QueueDepthPolicy(AdmissionPolicy):
    """Shed past a backlog watermark; optionally reject past a higher one.

    Watermarks are fractions of the client's Copy ring capacity measured
    in *tasks outstanding* (pending + still on the rings), the natural
    unit for "is the queue growing without bound".
    """

    name = "queue-depth"

    def __init__(self, shed_watermark=0.5, reject_watermark=None):
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")
        if reject_watermark is not None and reject_watermark < shed_watermark:
            raise ValueError("reject_watermark must be >= shed_watermark")
        self.shed_watermark = shed_watermark
        self.reject_watermark = reject_watermark

    def decide(self, controller, client, task):
        capacity = client.u_queues.copy.capacity
        depth = (len(client.pending) + len(client.u_queues.copy)
                 + len(client.k_queues.copy))
        if (self.reject_watermark is not None
                and depth >= capacity * self.reject_watermark):
            return REJECT
        if depth >= capacity * self.shed_watermark:
            return SHED
        return ADMIT


class DeadlineFeasiblePolicy(AdmissionPolicy):
    """Admit only work the service can plausibly finish on time.

    Feasibility estimate: the client's outstanding bytes plus this task,
    drained at the engine's sustained rate, must land before the task's
    deadline.  Tasks with no deadline are only throttled by the token
    buckets, and only once the client is saturated.
    """

    name = "deadline-feasible"

    def __init__(self, saturation_bytes=DEFAULT_SATURATION_BYTES,
                 headroom=1.0):
        if headroom <= 0:
            raise ValueError("headroom must be positive")
        self.saturation_bytes = saturation_bytes
        self.headroom = headroom

    def decide(self, controller, client, task):
        now = controller.service.env.now
        rate = controller.service_rate()
        if task.deadline is not None:
            backlog = client.outstanding_bytes + task.length
            estimated = now + int(backlog / rate * self.headroom)
            if estimated > task.deadline:
                return SHED
        if client.outstanding_bytes < self.saturation_bytes:
            return ADMIT
        # Saturated: sustained async admission is metered by the share-
        # weighted token buckets (cgroup first, then the client's slice).
        if not controller.cgroup_bucket(client).consume(task.length):
            return SHED
        if not controller.client_bucket(client).consume(task.length):
            return SHED
        return ADMIT


POLICIES = {
    AlwaysAdmit.name: AlwaysAdmit,
    QueueDepthPolicy.name: QueueDepthPolicy,
    DeadlineFeasiblePolicy.name: DeadlineFeasiblePolicy,
}


def make_admission(policy):
    """Build a policy from its registered name (or pass one through)."""
    if policy is None:
        policy = os.environ.get("COPIER_ADMISSION", "").strip() or "always"
    if isinstance(policy, AdmissionPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise ValueError("unknown admission policy %r (have: %s)" % (
            policy, ", ".join(sorted(POLICIES)))) from None


class OverloadStats:
    """Counters for every admission/cancellation/deadline decision."""

    __slots__ = ("admitted", "shed_tasks", "shed_bytes", "rejected",
                 "cancelled", "deadline_misses")

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class AdmissionController:
    """Per-service admission state: the policy plus its token buckets.

    Bucket rates are keyed off the scheduler's cgroup shares: a cgroup's
    sustained async admission rate is its share-weighted fraction of the
    engine rate, and a client's is its even split of the cgroup's.  The
    burst allowance is deliberately generous (several copy slices) so
    bursty-but-sustainable clients never notice the meter.
    """

    #: Token burst, in multiples of the scheduler's copy slice.
    BURST_SLICES = 64

    def __init__(self, service, policy=None):
        self.service = service
        self.policy = make_admission(policy)
        self.stats = OverloadStats()
        self._client_buckets = {}
        self._cgroup_buckets = {}

    def service_rate(self):
        """Sustained engine drain rate, bytes/cycle (conservative: the
        CPU stream; DMA piggybacking only improves on it)."""
        return self.service.params.avx_bytes_per_cycle

    def _burst_bytes(self):
        return self.BURST_SLICES * self.service.scheduler.copy_slice_bytes

    def cgroup_bucket(self, client):
        scheduler = self.service.scheduler
        group = scheduler._client_group.get(client, scheduler.root_cgroup)
        bucket = self._cgroup_buckets.get(group.name)
        if bucket is None:
            total_shares = sum(g.shares for g in scheduler.cgroups.values())
            rate = self.service_rate() * group.shares / max(1, total_shares)
            bucket = TokenBucket(self.service.env, rate, self._burst_bytes())
            self._cgroup_buckets[group.name] = bucket
        return bucket

    def client_bucket(self, client):
        bucket = self._client_buckets.get(client)
        if bucket is None:
            scheduler = self.service.scheduler
            group = scheduler._client_group.get(client,
                                                scheduler.root_cgroup)
            rate = (self.cgroup_bucket(client).rate
                    / max(1, len(group.clients)))
            bucket = TokenBucket(self.service.env, rate, self._burst_bytes())
            self._client_buckets[client] = bucket
        return bucket

    def forget(self, client):
        """Drop per-client bucket state (client unregistered/moved)."""
        self._client_buckets.pop(client, None)

    def invalidate_cgroups(self):
        """Recompute cgroup rates on the next decision (shares changed)."""
        self._cgroup_buckets.clear()
        self._client_buckets.clear()

    # ------------------------------------------------------------- decision

    def admit(self, client, task):
        """Decide for one task; returns ADMIT / SHED / REJECT.

        Lazy tasks and tasks entangled with in-flight work (shed would
        reorder against dependency tracking) are always admitted.
        """
        decision = self.policy.decide(self, client, task)
        if decision == SHED and not self._sheddable(client, task):
            decision = ADMIT
        if decision == ADMIT:
            self.stats.admitted += 1
        return decision

    def _sheddable(self, client, task):
        """True when executing ``task`` synchronously *now* is safe."""
        if task.lazy:
            return False
        from repro.mem.faults import SegmentationFault

        try:
            task.src.aspace.check_range(task.src.start, task.src.length,
                                        write=False)
            task.dst.aspace.check_range(task.dst.start, task.dst.length,
                                        write=True)
        except SegmentationFault:
            # Let the normal ingest path drop it and signal the process.
            return False
        for earlier in client.task_index:
            if earlier.is_finished:
                continue
            if (earlier.dst.overlaps(task.src)
                    or earlier.dst.overlaps(task.dst)
                    or earlier.src.overlaps(task.dst)):
                return False
        return True

    def snapshot(self):
        return dict(self.stats.as_dict(), policy=self.policy.name)
