"""Pluggable polling policies for Copier threads (§4.5.1, §5.3).

A :class:`PollingPolicy` decides how a Copier thread behaves *between*
sweeps: whether it may run at all, how long to pause after an empty sweep,
when to give up polling and block on the doorbell, and whether a client's
submission should ring that doorbell.

Built-in policies:

* ``"napi"`` (default) — busy-poll with a small constant gap between empty
  sweeps; good latency at the cost of a partially-busy dedicated core.
* ``"scenario"`` — the thread sleeps until :meth:`CopierService.
  scenario_begin` (or ``copier_awaken``) fires and goes back to sleep when
  queues drain; the smartphone-friendly mode used on HarmonyOS (§5.3).
* ``"adaptive"`` — NAPI-like, but the poll gap widens geometrically under
  sustained-empty sweeps (and collapses back on work), trading a little
  wake-up latency for far fewer poll iterations on a mostly-idle core.

Policies are stateless with respect to individual threads: per-thread
state (the idle streak) lives in the worker loop and is passed in, so one
policy instance can serve every thread of a service.
"""

#: Cycles between empty sweeps in NAPI mode (also the adaptive base gap).
NAPI_POLL_GAP = 200


class PollingPolicy:
    """Strategy interface consulted by :class:`repro.copier.worker.
    CopierWorker` once per loop iteration."""

    name = "policy"

    #: Consecutive empty sweeps tolerated before blocking on the doorbell.
    idle_threshold = 8

    def ready(self, service):
        """May Copier threads run at all right now?  Returning False sends
        the thread to an unconditional sleep (scenario gating, §5.3)."""
        return True

    def wake_on_submit(self, service):
        """Should a client's submission ring sleeping threads' doorbells?"""
        return True

    def poll_gap(self, idle_streak):
        """Cycles to pause after the ``idle_streak``-th empty sweep."""
        return NAPI_POLL_GAP

    def should_block(self, idle_streak):
        """True when the thread should stop polling and block."""
        return idle_streak > self.idle_threshold

    def __repr__(self):
        return "<%s %r>" % (type(self).__name__, self.name)


class NapiPolicy(PollingPolicy):
    """Constant-gap busy polling (the paper's default server mode)."""

    name = "napi"


class ScenarioPolicy(PollingPolicy):
    """Scenario-driven threads: only run while a scenario is active, and
    submissions alone never wake them (§5.3)."""

    name = "scenario"

    def ready(self, service):
        return service.scenario_active

    def wake_on_submit(self, service):
        return service.scenario_active


class AdaptivePolicy(PollingPolicy):
    """Gap-widening polling: each further empty sweep doubles the pause.

    The gap starts at the NAPI gap and doubles per consecutive empty
    sweep up to ``max_gap``; any work resets the streak (the worker loop
    restarts it at zero), which collapses the gap back to the base.  The
    thread also tolerates a longer idle streak before blocking, because
    its widened gaps make continued polling cheap.
    """

    name = "adaptive"
    idle_threshold = 16

    def __init__(self, base_gap=NAPI_POLL_GAP, max_gap=16 * NAPI_POLL_GAP):
        if base_gap < 1 or max_gap < base_gap:
            raise ValueError("need 1 <= base_gap <= max_gap")
        self.base_gap = base_gap
        self.max_gap = max_gap

    def poll_gap(self, idle_streak):
        gap = self.base_gap << min(max(idle_streak, 0), 30)
        return min(gap, self.max_gap)


POLICIES = {
    NapiPolicy.name: NapiPolicy,
    ScenarioPolicy.name: ScenarioPolicy,
    AdaptivePolicy.name: AdaptivePolicy,
}


def make_policy(polling):
    """Build a policy from its registered name (or pass one through)."""
    if isinstance(polling, PollingPolicy):
        return polling
    try:
        return POLICIES[polling]()
    except KeyError:
        raise ValueError("unknown polling mode %r (have: %s)" % (
            polling, ", ".join(sorted(POLICIES)))) from None
