"""Order and data dependency tracking (§4.2).

Order dependency merges the u-mode and k-mode copy streams of one client
into a single total order using barrier tasks captured at trap/return
events (Fig. 6-a).  The merged order is expressed as sort keys:

* a u-mode task acquired at ring position ``p`` gets key ``(p + 1, 0, p)``;
* a k-mode task submitted after a barrier recording ``c`` acquired u-mode
  tasks gets key ``(c, 1, seq)``.

Under lexicographic comparison this places each k-mode task after exactly
the ``c`` u-mode tasks the barrier witnessed and before every later one —
and, for the racy window where another app thread submits during the
syscall (U3/U4 in Fig. 6-a), k-mode tasks win, matching the paper's
"Copier prioritizes tasks in k-mode queues".

Data dependency is computed on demand by walking earlier tasks in reverse
merged order and comparing regions (both sources and destinations).
"""


def u_order_key(position):
    return (position + 1, 0, position)


def k_order_key(barrier_u_position, sequence):
    return (barrier_u_position, 1, sequence)


class PendingTasks:
    """Per-client pending Copy Tasks in merged submission order."""

    def __init__(self):
        self._tasks = []  # kept sorted by order_key

    def __len__(self):
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks)

    def add(self, task):
        if task.order_key is None:
            raise ValueError("task has no order key; submit through queues")
        # Fast path: appends dominate (keys are normally increasing).
        if not self._tasks or self._tasks[-1].order_key <= task.order_key:
            self._tasks.append(task)
            return
        lo, hi = 0, len(self._tasks)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._tasks[mid].order_key <= task.order_key:
                lo = mid + 1
            else:
                hi = mid
        self._tasks.insert(lo, task)

    def remove(self, task):
        self._tasks.remove(task)

    def head(self):
        return self._tasks[0] if self._tasks else None

    def runnable_head(self):
        """First pending non-lazy task (lazy tasks are skipped, §4.4)."""
        for task in self._tasks:
            if not task.lazy:
                return task
        return None

    def earlier_than(self, task):
        """Tasks strictly before ``task`` in merged order, nearest first."""
        result = []
        for other in self._tasks:
            if other is task:
                break
            if other.order_key < task.order_key:
                result.append(other)
        result.reverse()
        return result

    def dependencies_of(self, task):
        """Earlier pending tasks ``task`` conflicts with (nearest first).

        A conflict is any region overlap: RAW (task.src vs other.dst),
        WAR (task.dst vs other.src) or WAW (task.dst vs other.dst).
        """
        deps = []
        for other in self.earlier_than(task):
            if (
                task.src.overlaps(other.dst)
                or task.dst.overlaps(other.src)
                or task.dst.overlaps(other.dst)
            ):
                deps.append(other)
        return deps

    def raw_source_of(self, task):
        """Nearest earlier task whose destination feeds ``task``'s source.

        This is the absorbable producer for §4.4 (e.g. A→B when processing
        B→C).  Returns ``None`` when no such producer is pending.
        """
        for other in self.earlier_than(task):
            if task.src.overlaps(other.dst):
                return other
        return None

    def tasks_writing(self, region):
        """Pending tasks whose destination intersects ``region`` (for csync)."""
        return [t for t in self._tasks if t.dst.overlaps(region)]

    def transitive_dependencies(self, task):
        """All pending tasks that must run before ``task`` (topological order).

        Used by task promotion: when a Sync Task raises a task's priority,
        everything it depends on (recursively) is raised with it (§4.1).
        """
        ordered = []
        seen = {task.task_id}
        stack = [task]
        while stack:
            current = stack.pop()
            for dep in self.dependencies_of(current):
                if dep.task_id not in seen:
                    seen.add(dep.task_id)
                    ordered.append(dep)
                    stack.append(dep)
        ordered.sort(key=lambda t: t.order_key)
        return ordered


class BarrierBookkeeping:
    """Tracks the k-mode submission context of one client (§4.2.1).

    The kernel calls :meth:`on_trap` when entering a syscall and
    :meth:`on_return` when leaving; the first k-mode submission after a
    trap snapshots the paired u-mode Copy Queue position.
    """

    def __init__(self, u_copy_queue):
        self.u_copy_queue = u_copy_queue
        self._current_barrier_pos = 0
        self._barrier_epoch = 0
        self._k_sequence = 0
        self.barriers_recorded = 0

    def on_trap(self):
        self._snapshot()

    def on_return(self):
        self._snapshot()

    def _snapshot(self):
        self._current_barrier_pos = self.u_copy_queue.head
        self._barrier_epoch = self.u_copy_queue.epoch
        self.barriers_recorded += 1

    def next_k_key(self):
        self._k_sequence += 1
        return k_order_key(self._current_barrier_pos, self._k_sequence)
