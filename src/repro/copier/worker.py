"""The per-thread Copier loop: polling, sleep/wake, and auto-scaling.

Each Copier thread is a :class:`CopierWorker` running as a simulator
process pinned to a dedicated core.  Per iteration it ingests published
tasks, serves Sync Tasks (k-mode before u-mode, §4.2.2), asks the
scheduler for a client and executes one dispatcher round for it — all via
the service's shared :class:`~repro.copier.executor.CopyExecutor`.  The
*between-sweeps* behaviour (poll gaps, when to block, whether submissions
wake it) is delegated to the service's pluggable
:class:`~repro.copier.polling.PollingPolicy`.

:class:`AutoScaler` implements §4.5.1's load-watching: thread 0 records
its busy-time fraction per decision window and wakes/sheds sibling
threads to keep it between ``low_load`` and ``high_load``.
"""

from repro.sim import Compute, Timeout, WaitEvent
from repro.sim.trace import ThreadSleep, ThreadWake

#: Bookkeeping cycles charged per task retired by the overload reap.
_REAP_CYCLES_PER_TASK = 15


class AutoScaler:
    """Busy-fraction-driven thread scaling for one service (§4.5.1)."""

    #: Loop iterations per auto-scaling decision window.
    LOAD_WINDOW = 24

    #: Consecutive low-load observations before shedding a thread.
    LOW_STREAK = 3

    def __init__(self, service):
        self.service = service
        self.window = []
        self._low_streak = 0

    def record(self, load, tid=0):
        """Thread 0 watches its busy-time fraction over each decision
        window and keeps it between low_load and high_load by waking or
        sleeping sibling threads.  Scale-down needs a streak of low
        observations (hysteresis) so brief inter-request gaps don't shed
        threads under sustained load."""
        service = self.service
        if not service.autoscale or tid != 0:
            return
        self.window.append(load)
        if load > service.params.high_load:
            self._low_streak = 0
            if service.active_threads < service.max_threads:
                service.active_threads += 1
                service.peak_threads = max(service.peak_threads,
                                           service.active_threads)
                service._wake_all()
        elif load < service.params.low_load:
            self._low_streak += 1
            if self._low_streak >= self.LOW_STREAK and service.active_threads > 1:
                service.active_threads -= 1
                self._low_streak = 0
        else:
            self._low_streak = 0


class CopierWorker:
    """One Copier thread: owns the loop generator spawned by the service."""

    def __init__(self, service, tid):
        self.service = service
        self.tid = tid

    def my_clients(self):
        """Clients served by this thread: round-robin over the active
        thread count, so scaling up immediately re-spreads clients (the
        NUMA-local preference is a no-op in this single-node model)."""
        service = self.service
        if self.tid >= service.active_threads:
            return []
        return [c for i, c in enumerate(service.clients)
                if i % service.active_threads == self.tid]

    # ------------------------------------------------------------ main loop

    def loop(self):
        service = self.service
        executor = service.executor
        params = service.params
        # Save SIMD state once on activation instead of per copy (§4.3).
        yield Compute(params.simd_state_cycles, tag="copier-mgmt")
        idle_streak = 0
        win_start = service.env.now
        win_busy = 0
        win_iters = 0
        while service.running:
            if not service.policy.ready(service) or \
                    self.tid >= service.active_threads:
                yield from self._sleep()
                win_start, win_busy, win_iters = service.env.now, 0, 0
                continue
            iter_start = service.env.now
            did_work = False
            clients = self.my_clients()

            ingest_cost = 0
            for client in clients:
                ingest_cost += executor.ingest(client)
            if ingest_cost:
                yield Compute(ingest_cost, tag="copier-mgmt")

            # Retire cancelled/deadline-expired work before planning any
            # rounds — no cycles are spent copying bytes nobody wants.
            reaped = 0
            for client in clients:
                reaped += service.completion.reap_overload(client)
            if reaped:
                did_work = True
                yield Compute(reaped * _REAP_CYCLES_PER_TASK,
                              tag="copier-mgmt")

            # Sync Tasks first — k-mode before u-mode (§4.2.2).
            for kind in ("k", "u"):
                for client in clients:
                    queues = client.k_queues if kind == "k" else client.u_queues
                    for sync in queues.sync.drain():
                        did_work = True
                        yield from executor.handle_sync(client, sync)

            ready = [c for c in clients if executor.has_runnable(c)]
            client = service.scheduler.pick(ready)
            if client is not None:
                head = executor.next_head(client)
                plan = service.dispatcher.build_round(
                    client.pending, service.scheduler.copy_slice_bytes,
                    head=head)
                if plan is not None and (plan.avx_jobs or plan.dma_runs):
                    did_work = True
                    yield from executor.execute_plan(client, plan)
                service.completion.sweep(client)

            if did_work:
                win_busy += service.env.now - iter_start
            win_iters += 1
            if win_iters >= AutoScaler.LOAD_WINDOW:
                elapsed = max(1, service.env.now - win_start)
                service.autoscaler.record(win_busy / elapsed, tid=self.tid)
                win_start, win_busy, win_iters = service.env.now, 0, 0
            if did_work:
                idle_streak = 0
                service.rounds_executed += 1
            else:
                idle_streak += 1
                yield Compute(params.queue_poll_cycles, tag="poll")
                if service.policy.should_block(idle_streak):
                    # Brief busy-poll burst, then block until a client's
                    # doorbell (or, in scenario mode, until the scenario
                    # begins) — instant wakeup, no idle burn.  Going idle
                    # is itself a low-load observation for auto-scaling.
                    service.autoscaler.record(0.0, tid=self.tid)
                    self._arm_lazy_timer(clients)
                    yield from self._sleep(wake_cost=100)
                    idle_streak = 0
                    win_start, win_busy, win_iters = service.env.now, 0, 0
                else:
                    yield Timeout(service.policy.poll_gap(idle_streak))

    # ----------------------------------------------------------- sleep/wake

    def _arm_lazy_timer(self, clients):
        """Before sleeping, arm a wakeup at the earliest lazy deadline so
        deferred tasks still run when their period elapses (§4.4) — and
        at the earliest task deadline, so expired tasks are reaped (and
        their pins released) even when no new submission rings the
        doorbell."""
        service = self.service
        deadlines = [t.lazy_deadline for c in clients for t in c.pending
                     if t.lazy and t.lazy_deadline is not None]
        deadlines += [t.deadline for c in clients for t in c.pending
                      if t.deadline is not None]
        if not deadlines:
            return
        delay = max(0, min(deadlines) - service.env.now)
        tid = self.tid

        def fire():
            event = service._wake_events.get(tid)
            if event is not None and not event.triggered:
                event.succeed()

        service.env.schedule(delay, fire)

    def _sleep(self, wake_cost=None):
        service = self.service
        event = service.env.event()
        service._wake_events[self.tid] = event
        # Re-check after publishing the wake slot: a client may have
        # submitted between our last drain and here (the classic lost
        # wakeup), in which case we skip the sleep entirely.  An inactive
        # scenario sleeps unconditionally — only scenario_begin wakes it.
        if service.policy.ready(service) and self._has_published_work():
            service._wake_events.pop(self.tid, None)
            return
        inj = service.faults
        if inj.armed:
            # Spurious wakeup: the doorbell rings with no work behind it.
            # The loop absorbs it — an empty sweep, then back to sleep.
            delay = inj.delay_cycles("spurious_wakeup")
            if delay:
                def spurious():
                    if not event.triggered:
                        service.fault_stats.spurious_wakeups += 1
                        event.succeed()
                service.env.schedule(delay, spurious)
        trace = service.trace
        slept_at = service.env.now
        if trace.active:
            trace.emit(ThreadSleep(slept_at, self.tid))
        yield WaitEvent(event)
        service._wake_events.pop(self.tid, None)
        if trace.active:
            trace.emit(ThreadWake(service.env.now, self.tid,
                                  service.env.now - slept_at))
        if wake_cost is None:
            wake_cost = service.params.scenario_wake_cycles
        yield Compute(wake_cost, tag="copier-mgmt")

    def _has_published_work(self):
        executor = self.service.executor
        for client in self.my_clients():
            if (not client.u_queues.copy.is_empty
                    or not client.k_queues.copy.is_empty
                    or not client.u_queues.sync.is_empty
                    or not client.k_queues.sync.is_empty
                    or executor.has_runnable(client)):
                return True
        return False
