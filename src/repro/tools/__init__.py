"""Copier toolchain (§5.1): CopierSanitizer, CopierGen, CopierStat."""

from repro.tools.sanitizer import CopierSanitizer, SanitizerViolation
from repro.tools import copierstat

__all__ = ["CopierSanitizer", "SanitizerViolation", "copierstat"]
