"""CopierSanitizer: shadow-memory detection of missing csyncs (§5.1.2).

Mirrors the AddressSanitizer-based design: when a program amemcpys,
both the source and destination ranges are *poisoned* in shadow memory;
csync unpoisons the synced range.  Any instrumented access (read, write,
free) that touches poisoned bytes is a bug — an access that may observe
incomplete data — and is recorded (or raised, in strict mode).

In the paper the instrumentation is inserted at compile time; here the
"compiler" is :mod:`repro.tools.copiergen`, and hand-written apps call
the ``read``/``write``/``free`` wrappers directly.
"""

import bisect


class SanitizerViolation(Exception):
    """Raised in strict mode when an access touches poisoned memory."""

    def __init__(self, kind, va, length, overlap):
        self.kind = kind
        self.va = va
        self.length = length
        self.overlap = overlap
        super().__init__(
            "%s of [0x%x, +%d) touches unsynced async-copy range "
            "[0x%x, +%d): missing csync?" % (kind, va, length,
                                             overlap[0], overlap[1]))


class _ShadowMap:
    """Interval set of poisoned byte ranges (sorted, non-overlapping)."""

    def __init__(self):
        self._starts = []
        self._ends = []

    def poison(self, start, length):
        if length <= 0:
            return
        self.unpoison(start, length)  # normalize overlaps first
        i = bisect.bisect_left(self._starts, start)
        self._starts.insert(i, start)
        self._ends.insert(i, start + length)

    def unpoison(self, start, length):
        if length <= 0:
            return
        end = start + length
        new_starts, new_ends = [], []
        for s, e in zip(self._starts, self._ends):
            if e <= start or s >= end:
                new_starts.append(s)
                new_ends.append(e)
                continue
            if s < start:
                new_starts.append(s)
                new_ends.append(start)
            if e > end:
                new_starts.append(end)
                new_ends.append(e)
        self._starts, self._ends = new_starts, new_ends

    def overlap(self, start, length):
        """First poisoned (start, length) intersecting the range, or None.

        Zero- and negative-length queries touch no bytes and never
        intersect (matching poison/unpoison, which ignore them).
        """
        if length <= 0:
            return None
        end = start + length
        i = bisect.bisect_right(self._ends, start)
        for s, e in zip(self._starts[i:], self._ends[i:]):
            if s >= end:
                return None
            if e > start:
                return (s, e - s)
        return None

    @property
    def poisoned_bytes(self):
        return sum(e - s for s, e in zip(self._starts, self._ends))


class CopierSanitizer:
    """Per-process sanitizer runtime.

    Wrap a client's API: route submissions through :meth:`on_amemcpy` /
    :meth:`on_csync`, and instrument data accesses with :meth:`read`,
    :meth:`write` and :meth:`free`.
    """

    def __init__(self, strict=False):
        self.strict = strict
        # dst ranges: no access at all until csynced.
        self.shadow_dst = _ShadowMap()
        # src ranges: reads are fine, writes and frees are not (§5.1.1
        # guideline 1: "sync before ... writing sources").
        self.shadow_src = _ShadowMap()
        self.reports = []

    # --------------------------------------------------------- API hooks

    def on_amemcpy(self, dst, src, length):
        """Poison both ranges with their respective access rules."""
        self.shadow_dst.poison(dst, length)
        self.shadow_src.poison(src, length)

    def on_csync(self, addr, length):
        """csync(addr) legalizes the dst range and releases the matching
        source bytes (the copy consumed them)."""
        self.shadow_dst.unpoison(addr, length)
        self.shadow_src.unpoison(addr, length)

    def release_source(self, src, length):
        """Explicitly release a source range (e.g. its copy was csynced
        via the destination address)."""
        self.shadow_src.unpoison(src, length)

    def on_csync_all(self):
        self.shadow_dst = _ShadowMap()
        self.shadow_src = _ShadowMap()

    # --------------------------------------------------- instrumentation

    def read(self, va, length):
        self._check("read", va, length, self.shadow_dst)

    def write(self, va, length):
        self._check("write", va, length, self.shadow_dst)
        self._check("write", va, length, self.shadow_src)

    def free(self, va, length):
        """Freeing a buffer still involved in an unsynced copy (the
        copyUse() free-before-csync bug in Fig. 4)."""
        self._check("free", va, length, self.shadow_dst)
        self._check("free", va, length, self.shadow_src)

    def _check(self, kind, va, length, shadow):
        overlap = shadow.overlap(va, length)
        if overlap is None:
            return
        violation = SanitizerViolation(kind, va, length, overlap)
        self.reports.append(violation)
        if self.strict:
            raise violation

    def summary(self):
        return ["%s" % v for v in self.reports]
