"""Compare two ``BENCH_perf.json`` baselines with a tolerance band.

CI's perf-smoke job runs ``repro.bench.perfbaseline`` on the checkout and
diffs it against the committed baseline:

    python -m repro.tools.perfdiff BENCH_perf.json new.json --tolerance 0.25

Exit status is nonzero when any scenario's wall-clock regressed by more
than the tolerance (new > old * (1 + tolerance)).  Wall-clock *wins* and
scenarios present on only one side are reported but never fail the gate
— machines differ, scenarios evolve; only a same-machine slowdown is a
regression signal.

Sim-side drift (``sim_cycles`` / ``sim_bytes`` changing between two
baselines of the same schema) is flagged as a determinism warning: a
host-side fast path must not move simulated time.  Pass ``--strict-sim``
to turn those warnings into failures (the differential-determinism CI
configuration).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as fh:
        return json.load(fh)


def compare(old, new, tolerance=0.25):
    """Return (rows, regressions, sim_drift) comparing two baselines.

    ``rows`` is a list of dicts (one per scenario, union of both sides);
    ``regressions``/``sim_drift`` list the offending scenario names.
    """
    rows = []
    regressions = []
    sim_drift = []
    old_sc = old.get("scenarios", {})
    new_sc = new.get("scenarios", {})
    same_schema = old.get("schema") == new.get("schema")
    for name in sorted(set(old_sc) | set(new_sc)):
        o, n = old_sc.get(name), new_sc.get(name)
        row = {"scenario": name, "old_wall": None, "new_wall": None,
               "speedup": None, "status": ""}
        if o is None or n is None:
            row["status"] = "only-old" if n is None else "only-new"
            if o is not None:
                row["old_wall"] = o["wall_s"]
            if n is not None:
                row["new_wall"] = n["wall_s"]
            rows.append(row)
            continue
        row["old_wall"] = o["wall_s"]
        row["new_wall"] = n["wall_s"]
        row["speedup"] = o["wall_s"] / n["wall_s"] if n["wall_s"] else 0.0
        if n["wall_s"] > o["wall_s"] * (1.0 + tolerance):
            row["status"] = "REGRESSION"
            regressions.append(name)
        elif row["speedup"] >= 1.0 + tolerance:
            row["status"] = "faster"
        else:
            row["status"] = "ok"
        if same_schema and (o.get("sim_cycles") != n.get("sim_cycles")
                            or o.get("sim_bytes") != n.get("sim_bytes")):
            row["status"] += " sim-drift"
            sim_drift.append(name)
        rows.append(row)
    return rows, regressions, sim_drift


def render(rows, tolerance):
    from repro.bench.report import ResultTable

    table = ResultTable(
        "Perf diff (tolerance ±%d%% wall-clock)" % round(tolerance * 100),
        ["scenario", "old wall s", "new wall s", "speedup", "status"])
    for row in rows:
        table.add(row["scenario"],
                  "-" if row["old_wall"] is None else row["old_wall"],
                  "-" if row["new_wall"] is None else row["new_wall"],
                  "-" if row["speedup"] is None else row["speedup"],
                  row["status"])
    return table.render()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two perfbaseline JSON files.")
    parser.add_argument("old", help="committed baseline (BENCH_perf.json)")
    parser.add_argument("new", help="freshly measured baseline")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed wall-clock regression (default 0.25)")
    parser.add_argument("--strict-sim", action="store_true",
                        help="fail on simulated-side drift too")
    args = parser.parse_args(argv)
    old, new = load(args.old), load(args.new)
    rows, regressions, sim_drift = compare(old, new,
                                           tolerance=args.tolerance)
    print(render(rows, args.tolerance))
    if sim_drift:
        print("\nWARNING: simulated-side drift (cycles/bytes changed): %s"
              % ", ".join(sim_drift))
    if regressions:
        print("\nFAIL: wall-clock regression beyond %d%%: %s"
              % (round(args.tolerance * 100), ", ".join(regressions)))
        return 1
    if sim_drift and args.strict_sim:
        print("\nFAIL: --strict-sim and simulated-side drift present")
        return 1
    print("\nOK: no wall-clock regression beyond the tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
