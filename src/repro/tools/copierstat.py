"""CopierStat: runtime introspection of the Copier service (§5.1's
"debug tool" companion to CopierSanitizer).

Snapshots the whole service — per-client queue depths, pending tasks,
copy/absorption counters, scheduler totals, cgroup weights, ATCache and
dispatcher statistics, thread states — into a plain dict, and renders a
human-readable report.  Useful both for debugging ports (is my abort
actually retiring the task?) and for the benchmarks' narratives.
"""


def snapshot(service):
    """Return a nested dict describing the service's current state."""
    sched = service.scheduler
    dispatcher = service.dispatcher
    atcache = service.atcache
    snap = {
        "now": service.env.now,
        "polling": service.polling,
        "scenario_active": service.scenario_active,
        "threads": {
            "active": service.active_threads,
            "peak": service.peak_threads,
            "spawned": len(service.threads),
            "sleeping": sorted(service._wake_events),
        },
        "dispatcher": {
            "rounds": dispatcher.rounds_planned,
            "bytes_to_dma": dispatcher.bytes_to_dma,
            "bytes_to_avx": dispatcher.bytes_to_avx,
            "use_dma": dispatcher.use_dma,
            "use_absorption": dispatcher.use_absorption,
        },
        "atcache": {
            "hits": atcache.hits,
            "misses": atcache.misses,
            "hit_rate": atcache.hit_rate,
            "invalidations": atcache.invalidations,
        },
        "dma": None,
        "tasks_dropped": service.tasks_dropped,
        "cgroups": {
            name: {"shares": g.shares,
                   "total_copy_length": g.total_copy_length,
                   "clients": len(g.clients)}
            for name, g in sched.cgroups.items()
        },
        "clients": {},
    }
    if service.dma is not None:
        snap["dma"] = {
            "bytes_copied": service.dma.bytes_copied,
            "batches": service.dma.batches,
            "busy_cycles": service.dma.busy_cycles,
        }
    for client in service.clients:
        stats = client.stats
        snap["clients"][client.name] = {
            "queues": {
                "u_copy": len(client.u_queues.copy),
                "u_sync": len(client.u_queues.sync),
                "u_handler": len(client.u_queues.handler),
                "k_copy": len(client.k_queues.copy),
                "k_sync": len(client.k_queues.sync),
            },
            "pending_tasks": len(client.pending),
            "submitted": stats.submitted,
            "completed": stats.completed,
            "aborted": stats.aborted,
            "dropped": stats.dropped,
            "sync_tasks": stats.sync_tasks,
            "bytes_copied": stats.bytes_copied,
            "bytes_absorbed": stats.bytes_absorbed,
            "scheduler_total": sched.client_total(client),
            "descriptor_pool": {"hits": client.desc_pool.hits,
                                "misses": client.desc_pool.misses},
        }
    return snap


def render(snap):
    """Format a snapshot as a text report."""
    lines = []
    out = lines.append
    out("CopierStat @ cycle %d" % snap["now"])
    out("  polling=%s scenario_active=%s threads=%d/%d (peak %d)" % (
        snap["polling"], snap["scenario_active"],
        snap["threads"]["active"], snap["threads"]["spawned"],
        snap["threads"]["peak"]))
    d = snap["dispatcher"]
    out("  dispatcher: %d rounds, %d B via DMA, %d B via AVX "
        "(dma=%s absorption=%s)" % (d["rounds"], d["bytes_to_dma"],
                                    d["bytes_to_avx"], d["use_dma"],
                                    d["use_absorption"]))
    a = snap["atcache"]
    out("  atcache: %.1f%% hit rate (%d hits / %d misses, %d invalidations)"
        % (a["hit_rate"] * 100, a["hits"], a["misses"],
           a["invalidations"]))
    if snap["dma"]:
        out("  dma engine: %d B in %d batches (%d busy cycles)" % (
            snap["dma"]["bytes_copied"], snap["dma"]["batches"],
            snap["dma"]["busy_cycles"]))
    out("  dropped tasks: %d" % snap["tasks_dropped"])
    for name, group in sorted(snap["cgroups"].items()):
        out("  cgroup %-12s shares=%-4d total=%-10d clients=%d" % (
            name, group["shares"], group["total_copy_length"],
            group["clients"]))
    for name, c in sorted(snap["clients"].items()):
        out("  client %-16s pend=%-3d subm=%-4d done=%-4d abrt=%-3d "
            "absorbed=%dB" % (name, c["pending_tasks"], c["submitted"],
                              c["completed"], c["aborted"],
                              c["bytes_absorbed"]))
        q = c["queues"]
        if any(q.values()):
            out("    queues: uC=%d uS=%d uH=%d kC=%d kS=%d" % (
                q["u_copy"], q["u_sync"], q["u_handler"], q["k_copy"],
                q["k_sync"]))
    return "\n".join(lines)


def report(service):
    """snapshot + render in one call."""
    return render(snapshot(service))
