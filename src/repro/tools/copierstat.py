"""CopierStat: runtime introspection of the Copier service (§5.1's
"debug tool" companion to CopierSanitizer).

Snapshots the whole service — per-client queue depths, pending tasks,
copy/absorption counters, scheduler totals, cgroup weights, ATCache and
dispatcher statistics, thread states — into a plain dict, and renders a
human-readable report.  The snapshot itself comes from
:meth:`CopierService.stats_snapshot`; this module owns only the rendering.

Since the trace bus landed, the snapshot also carries a ``"stages"``
section: the per-stage latency breakdown (submit→ingest, ingest→execute,
execute→complete, submit→complete) aggregated from the typed events each
copy-path layer emits (:mod:`repro.sim.trace`), plus task outcomes and
thread sleep/wake accounting.  Useful both for debugging ports (is my
abort actually retiring the task?  where does my latency live?) and for
the benchmarks' narratives.
"""

from repro.sim.trace import STAGE_NAMES

#: Human-readable labels for the pipeline stages, in render order.
STAGE_LABELS = {
    "submit_to_ingest": "submit→ingest",
    "ingest_to_execute": "ingest→execute",
    "execute_to_complete": "execute→complete",
    "submit_to_complete": "submit→complete",
}


def snapshot(service):
    """Return a nested dict describing the service's current state."""
    return service.stats_snapshot()


def render(snap):
    """Format a snapshot as a text report."""
    lines = []
    out = lines.append
    out("CopierStat @ cycle %d" % snap["now"])
    out("  polling=%s scenario_active=%s threads=%d/%d (peak %d)" % (
        snap["polling"], snap["scenario_active"],
        snap["threads"]["active"], snap["threads"]["spawned"],
        snap["threads"]["peak"]))
    d = snap["dispatcher"]
    out("  dispatcher: %d rounds, %d B via DMA, %d B via AVX "
        "(dma=%s absorption=%s)" % (d["rounds"], d["bytes_to_dma"],
                                    d["bytes_to_avx"], d["use_dma"],
                                    d["use_absorption"]))
    a = snap["atcache"]
    out("  atcache: %.1f%% hit rate (%d hits / %d misses, %d invalidations)"
        % (a["hit_rate"] * 100, a["hits"], a["misses"],
           a["invalidations"]))
    if snap["dma"]:
        out("  dma engine: %d B in %d batches (%d busy cycles)" % (
            snap["dma"]["bytes_copied"], snap["dma"]["batches"],
            snap["dma"]["busy_cycles"]))
    out("  dropped tasks: %d" % snap["tasks_dropped"])
    for line in render_overload(snap.get("overload")):
        out(line)
    for line in render_faults(snap.get("faults")):
        out(line)
    for line in render_integrity(snap.get("integrity")):
        out(line)
    for line in render_lifecycle(snap.get("lifecycle")):
        out(line)
    for line in render_stages(snap.get("stages")):
        out(line)
    for line in render_serve(snap.get("serve")):
        out(line)
    for name, group in sorted(snap["cgroups"].items()):
        out("  cgroup %-12s shares=%-4d total=%-10d clients=%d" % (
            name, group["shares"], group["total_copy_length"],
            group["clients"]))
    for name, c in sorted(snap["clients"].items()):
        out("  client %-16s pend=%-3d subm=%-4d done=%-4d abrt=%-3d "
            "absorbed=%dB" % (name, c["pending_tasks"], c["submitted"],
                              c["completed"], c["aborted"],
                              c["bytes_absorbed"]))
        q = c["queues"]
        if any(q.values()):
            out("    queues: uC=%d uS=%d uH=%d kC=%d kS=%d" % (
                q["u_copy"], q["u_sync"], q["u_handler"], q["k_copy"],
                q["k_sync"]))
    return "\n".join(lines)


def render_stages(stages):
    """Render the trace-bus stage section as report lines.

    ``stages`` is the ``"stages"`` entry of a snapshot (or an aggregator's
    ``as_dict()``); returns ``[]`` when absent so old snapshots render.
    """
    if not stages:
        return []
    lines = ["  stage latency (cycles, from the trace bus):"]
    for name in STAGE_NAMES:
        stage = stages["stages"][name]
        lines.append("    %-16s n=%-5d mean=%-10.1f max=%d" % (
            STAGE_LABELS[name], stage["count"], stage["mean"], stage["max"]))
    outcomes = stages["outcomes"]
    threads = stages["threads"]
    lines.append("    outcomes: %d done / %d aborted / %d dropped; "
                 "%d rounds, %d in flight" % (
                     outcomes.get("done", 0), outcomes.get("aborted", 0),
                     outcomes.get("dropped", 0), stages["rounds"],
                     stages["in_flight"]))
    lines.append("    threads: %d sleeps / %d wakes, %d cycles slept" % (
        threads["sleeps"], threads["wakes"], threads["slept_cycles"]))
    return lines


def render_serve(serve):
    """Render the async serving-driver section as report lines.

    ``serve`` is the ``"serve"`` entry of a snapshot (present only when a
    :class:`~repro.serve.driver.SimDriver` is attached to the service);
    returns ``[]`` when absent so non-serving snapshots render unchanged.
    """
    if not serve:
        return []
    lines = ["  serve: pacing=%s steps=%d (%.1f events/step) idle_polls=%d "
             "rounds=%d" % (serve.get("pacing", "?"), serve.get("steps", 0),
                            serve.get("events_per_step", 0.0),
                            serve.get("idle_polls", 0),
                            serve.get("rounds", 0))]
    lines.append("    ops: %d submitted / %d resolved (%d parked); "
                 "sessions %d live (%d opened, %d closed)" % (
                     serve.get("ops_submitted", 0),
                     serve.get("ops_resolved", 0), serve.get("parked", 0),
                     serve.get("sessions_live", 0),
                     serve.get("sessions_opened", 0),
                     serve.get("sessions_closed", 0)))
    return lines


def render_overload(overload):
    """Render the overload-protection section as report lines.

    ``overload`` is the ``"overload"`` entry of a snapshot; returns
    ``[]`` when absent (old snapshots) or when the default ``always``
    policy never shed/rejected/missed and the watchdog never fired, so
    pre-overload reports stay byte-identical.
    """
    if not overload:
        return []
    wd = overload.get("watchdog", {})
    alerts = (wd.get("stall_alerts", 0) + wd.get("starvation_alerts", 0)
              + wd.get("quarantine_alerts", 0))
    interesting = (overload.get("shed_tasks", 0) or overload.get("rejected", 0)
                   or overload.get("cancelled", 0)
                   or overload.get("deadline_misses", 0) or alerts)
    if overload.get("policy", "always") == "always" and not interesting:
        return []
    lines = ["  overload: policy=%s admitted=%d shed=%d (%d B) rejected=%d"
             % (overload["policy"], overload.get("admitted", 0),
                overload.get("shed_tasks", 0), overload.get("shed_bytes", 0),
                overload.get("rejected", 0))]
    lines.append("    cancelled=%d deadline_misses=%d retired=%d" % (
        overload.get("cancelled", 0), overload.get("deadline_misses", 0),
        overload.get("tasks_retired", 0)))
    if wd:
        starved = ", ".join(wd.get("starved_clients", [])) or "-"
        lines.append("    watchdog: %d checks, %d stall / %d starved / "
                     "%d quarantine alerts (starved: %s)" % (
                         wd.get("checks", 0), wd.get("stall_alerts", 0),
                         wd.get("starvation_alerts", 0),
                         wd.get("quarantine_alerts", 0), starved))
    return lines


def render_lifecycle(lifecycle):
    """Render the lifecycle/teardown section as report lines.

    ``lifecycle`` is the ``"lifecycle"`` entry of a snapshot; returns
    ``[]`` when absent (old snapshots) or when no lifecycle event ever
    fired, so steady-state reports stay byte-identical.
    """
    if not lifecycle:
        return []
    interesting = (lifecycle.get("exit_reaped", 0)
                   or lifecycle.get("efault_tasks", 0)
                   or lifecycle.get("deferred_unmaps", 0)
                   or lifecycle.get("processes_reaped", 0)
                   or lifecycle.get("drains", 0)
                   or lifecycle.get("pins_outstanding", 0)
                   or lifecycle.get("draining", False))
    if not interesting:
        return []
    lines = ["  lifecycle: %d procs reaped (%d tasks), %d efault tasks%s" % (
        lifecycle.get("processes_reaped", 0),
        lifecycle.get("exit_reaped", 0),
        lifecycle.get("efault_tasks", 0),
        ", DRAINING" if lifecycle.get("draining") else "")]
    lines.append("    unmaps: %d deferred / %d reclaimed, "
                 "%d pins outstanding" % (
                     lifecycle.get("deferred_unmaps", 0),
                     lifecycle.get("deferred_reclaimed", 0),
                     lifecycle.get("pins_outstanding", 0)))
    if lifecycle.get("drains", 0):
        lines.append("    drains: %d (requeued %d)" % (
            lifecycle.get("drains", 0),
            lifecycle.get("drain_requeued", 0)))
    return lines


def render_faults(faults):
    """Render the fault-injection section as report lines.

    ``faults`` is the ``"faults"`` entry of a snapshot; returns ``[]``
    when absent (old snapshots) or when no plan is armed and nothing was
    recovered, so fault-free reports stay unchanged.
    """
    if not faults:
        return []
    rec = faults["recovery"]
    if not faults["armed"] and not any(rec.values()):
        return []
    lines = []
    if faults["armed"]:
        injected = ", ".join("%s=%d" % (k, v)
                             for k, v in sorted(faults["injected"].items())
                             if v) or "none fired"
        lines.append("  faults: plan=%s seed=%s (%s)" % (
            faults["plan"], faults["seed"], injected))
    lines.append("    recovery: %d/%d dma submits retried ok "
                 "(%d exhausted), %d aborts, %d fallbacks (%d B)" % (
                     rec["dma_submit_retries_ok"], rec["dma_submit_failures"],
                     rec["dma_submit_exhausted"], rec["dma_aborts"],
                     rec["engine_fallbacks"], rec["fallback_bytes"]))
    lines.append("    recovery: %d/%d pins retried ok, %d spurious wakeups%s"
                 % (rec["pin_retries_ok"], rec["pin_failures"],
                    rec["spurious_wakeups"],
                    ", DMA QUARANTINED" if faults["dma_quarantined"] else ""))
    return lines


def render_integrity(integrity):
    """Render the end-to-end integrity section as report lines.

    ``integrity`` is the ``"integrity"`` entry of a snapshot; the key is
    present only when the end-to-end CRC is armed (or something tripped
    it), so reports from unarmed runs stay byte-identical — returns
    ``[]`` when absent.
    """
    if not integrity:
        return []
    lines = ["  integrity: e2e_crc=%s %d checks, %d mismatches "
             "(%d overlap-skips)" % (
                 "on" if integrity.get("e2e_crc") else "off",
                 integrity["crc_checks"], integrity["crc_mismatches"],
                 integrity["overlap_skips"])]
    if integrity["reexec_tasks"] or integrity["quarantines"]:
        lines.append("    repaired: %d tasks (%d B) re-executed host-side, "
                     "%d engine quarantines" % (
                         integrity["reexec_tasks"],
                         integrity["reexec_bytes"],
                         integrity["quarantines"]))
    if integrity["poisoned_tasks"] or integrity.get("dma_bitflips"):
        lines.append("    hardware: %d silent dma bitflips injected, "
                     "%d tasks retired poisoned" % (
                         integrity.get("dma_bitflips", 0),
                         integrity["poisoned_tasks"]))
    return lines


def report(service):
    """snapshot + render in one call."""
    return render(snapshot(service))
