"""ChaosSummary: run a seeded chaos campaign and report how teardown held.

CI's chaos-soak job runs this after the test suite and uploads the output
as an artifact: a human-readable record of every injected kill/unmap, how
each app fared, and whether the lifecycle invariants (zero leaked pins,
physical frames back to baseline, surviving buffers byte-identical to the
no-chaos oracle, a clean service drain) actually held.  A non-zero exit
means safe teardown broke.

Usage::

    PYTHONPATH=src python -m repro.tools.chaossummary [--seed 0]
        [--events 60] [--ops 60] [--check-determinism]

``--seed`` defaults to ``COPIER_CHAOS_SEED`` (falling back to 0);
``--plan`` arms a fault-injection plan on top of the chaos events, from
``COPIER_FAULT_PLAN`` when set — teardown must stay leak-free even while
the engines misbehave.
"""

import argparse
import os
import sys

from repro.chaos import determinism_fingerprint, run_campaign
from repro.faultinject import PLAN_NAMES, FaultPlan

MIN_EVENTS = 50


def render(result):
    lines = []
    out = lines.append
    out("chaossummary: seed=%d events=%d (kills=%d unmaps=%d)" % (
        result["seed"], result["events_fired"], result["kills"],
        result["unmaps"]))
    for tick, kind, target in result["events"]:
        out("  tick %-4d %-6s %s" % (tick, kind, target))
    for name, app in sorted(result["apps"].items()):
        out("  app %-10s %s ops=%-3d remaps=%-2d tainted=%s" % (
            name,
            "KILLED " if app["killed"] else
            ("finished" if app["finished"] else "stalled"),
            app["ops_done"], app["remaps"],
            ",".join(app["tainted"]) or "-"))
    lc = result["lifecycle"]
    out("  lifecycle: %d procs reaped (%d tasks), %d efault tasks, "
        "%d deferred unmaps (%d reclaimed)" % (
            lc["processes_reaped"], lc["exit_reaped"], lc["efault_tasks"],
            lc["deferred_unmaps"], lc["deferred_reclaimed"]))
    sd = result["shutdown"]
    out("  shutdown: drained=%s requeued=%d force_reaped=%d in %d cycles" % (
        sd["drained"], sd["requeued"], sd["force_reaped"], sd["cycles"]))
    out("  verified %d surviving buffers against the oracle; "
        "frames in use %d (baseline %d), %d pins leaked" % (
            result["verified_buffers"], result["frames_now"],
            result["baseline_frames"], result["leaked_pins"]))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="chaossummary", description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("COPIER_CHAOS_SEED", "0")))
    parser.add_argument("--events", type=int, default=60,
                        help="chaos events to inject (>= %d expected)"
                             % MIN_EVENTS)
    parser.add_argument("--ops", type=int, default=60,
                        help="operations per app")
    parser.add_argument("--plan", choices=PLAN_NAMES,
                        default=os.environ.get("COPIER_FAULT_PLAN") or None,
                        help="arm a fault-injection plan on top of chaos")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the campaign twice and require identical "
                             "events, counters, and outcomes")
    args = parser.parse_args(argv)

    plan = FaultPlan.named(args.plan, args.seed) if args.plan else None
    result = run_campaign(seed=args.seed, n_events=args.events,
                          n_ops=args.ops, fault_plan=plan)
    print(render(result))

    failures = list(result["failures"])
    if result["events_fired"] < min(MIN_EVENTS, args.events):
        failures.append("only %d chaos events fired (want >= %d)"
                        % (result["events_fired"],
                           min(MIN_EVENTS, args.events)))
    if result["verified_buffers"] == 0:
        failures.append("no surviving buffer could be verified")
    if args.check_determinism:
        plan2 = FaultPlan.named(args.plan, args.seed) if args.plan else None
        rerun = run_campaign(seed=args.seed, n_events=args.events,
                             n_ops=args.ops, fault_plan=plan2)
        if (determinism_fingerprint(result)
                != determinism_fingerprint(rerun)):
            failures.append("campaign is not deterministic for seed %d"
                            % args.seed)
        else:
            print("determinism: re-run reproduced the campaign exactly")

    for failure in failures:
        print("FAIL: %s" % failure)
    if not failures:
        print("OK: teardown stayed leak-free under %d chaos events"
              % result["events_fired"])
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
