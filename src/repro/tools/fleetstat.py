"""FleetStat: run a seeded fleet chaos campaign and report how it held.

CI's fleet-soak job runs this after ``tests/fleet`` and uploads the
output as an artifact: the node-level fault log (kills, partitions,
slow links), every backup promotion, per-stream client outcomes, the
per-node store digests and copier counters, and the verdict of the
zero-lost-acknowledged-writes audit.  A non-zero exit means the fleet
lost an acknowledged write, leaked a page pin, or failed to reproduce
itself under ``--check-determinism``.

Usage::

    PYTHONPATH=src python -m repro.tools.fleetstat [--seed 0]
        [--nodes 4] [--streams 6] [--ops 12] [--events 10]
        [--restart] [--double-crash] [--lossy]
        [--check-determinism] [--json]

``--restart`` switches to the crash-recovery campaign: every killed
node restarts from its disk (or a peer's shipped checkpoint) and
rejoins mid-storm, and the audit additionally requires every node back
alive with recovery (MTTR) counters recorded.  ``--double-crash`` arms
the simultaneous kill of both owners of one seeded key.

``--lossy`` switches to the silent-failure campaign: every link runs
the seeded drop/dup/reorder/corrupt fault plan under the reliable
exactly-once transport, the chaos mix adds lossy bursts and node-local
bitflip storms (with the end-to-end copy CRC armed), and the report
grows link-fault, transport and integrity counter sections.  The audit
is unchanged: zero lost acknowledged writes, zero corrupted bytes
served.

``--seed`` defaults to ``COPIER_FLEET_SEED`` (falling back to 0).  The
fleet arms ``COPIER_FAULT_PLAN``/``COPIER_FAULT_SEED`` from the
environment on every node's Copier service, so the soak job can layer
engine-level fault injection under the node-level storm with no extra
flags here.
"""

import argparse
import json
import os
import sys

from repro.fleet.chaos import (fleet_determinism_fingerprint,
                               run_fleet_campaign, run_restart_campaign)


def render(result):
    lines = []
    out = lines.append
    out("fleetstat: seed=%d nodes=%d events=%d kills=%d promotions=%d "
        "rounds=%d" % (result["seed"], result["n_nodes"],
                       len(result["events"]), result["kills"],
                       len(result["promotions"]), result["rounds"]))
    if "restart_log" in result:
        out("  restarts: %d (%d mid-resync, %d disk-wiped), "
            "recoveries=%d mttr=%d cycles" % (
                len(result["restart_log"]),
                sum(1 for _t, _n, d, _w in result["restart_log"] if d),
                sum(1 for _t, _n, _d, w in result["restart_log"] if w),
                result["recoveries"], result["mttr_cycles"]))
        for tick, key, owners in result.get("double_crashes", []):
            out("  tick %-4d double crash of owners %s for key %r"
                % (tick, list(owners), key))
    for tick, kind, target in result["events"]:
        out("  tick %-4d %-14s %s" % (tick, kind, target))
    for view, node_id in result["promotions"]:
        out("  view %-3d promoted around dead node %s" % (view, node_id))
    ops = result["ops"]
    out("  ops: %d submitted, %d acked, %d failed, %d read repairs" % (
        ops["submitted"], ops["acked"], ops["failed"], ops["read_repairs"]))
    for sid, stream in sorted(result["streams"].items()):
        out("  stream %-2d ops=%-3d acked=%-3d failed=%-2d abandoned=%-2d "
            "gets=%d" % (sid, stream["ops_done"], stream["acked"],
                         stream["failed"], stream["abandoned"],
                         stream["gets_checked"]))
    net = result["interconnect"]
    out("  interconnect: %d messages, %d bytes, %d dropped" % (
        net["messages"], net["bytes"], net["dropped"]))
    for line in render_lossy(result):
        out(line)
    for snap in result["nodes"]:
        copier = snap.get("copier") or {}
        out("  node %-3s %-4s keys=%-3d events=%-7d copier_rounds=%s" % (
            snap["node"], "up" if snap["alive"] else "DEAD",
            snap["store"]["keys"], snap["events"],
            copier.get("rounds", "-")))
    out("  audit: %d keys audited, %d lost acked writes, %d pins leaked" % (
        result["audited_keys"], len(result["lost_acked"]),
        result["leaked_pins"]))
    return "\n".join(lines)


def render_lossy(result):
    """Link-fault / transport / integrity report lines (lossy campaigns).

    Returns ``[]`` when the campaign ran without a link fault plan, so
    lossless reports stay byte-identical.
    """
    if "link_faults" not in result:
        return []
    lines = []
    lf = result["link_faults"]
    lines.append("  link faults: %d dropped, %d corrupted, %d duplicated, "
                 "%d reordered on the wire" % (
                     lf["lossy_dropped"], lf["corruptions"], lf["dups"],
                     lf["reorders"]))
    np = result["netpath"]
    lines.append("  transport: %d frames (+%d retransmits), %d acks, "
                 "%d crc-dropped, %d deduped, %d held, %d unacked" % (
                     np["frames_sent"], np["retransmits"],
                     np["acks_rx"], np["crc_dropped"],
                     np["dups_deduped"], np["reorders_held"],
                     np["unacked"]))
    checks = sum(i["crc_checks"] for i in result["integrity"].values())
    mismatches = sum(i["crc_mismatches"] for i in result["integrity"].values())
    reexec = sum(i["reexec_tasks"] for i in result["integrity"].values())
    poisoned = sum(i["poisoned_tasks"] for i in result["integrity"].values())
    if checks or mismatches:
        lines.append("  integrity: %d e2e crc checks, %d mismatches "
                     "(%d repaired, %d poisoned)" % (
                         checks, mismatches, reexec, poisoned))
    if "lossy_bursts" in result:
        lines.append("  storms: %d lossy bursts, %d bitflip storms" % (
            result["lossy_bursts"], result["bitflip_storms"]))
    return lines


def _jsonable(value):
    if isinstance(value, bytes):
        return value.decode("latin-1")
    if isinstance(value, dict):
        return {_jsonable(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="fleetstat", description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("COPIER_FLEET_SEED", "0")))
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--streams", type=int, default=6)
    parser.add_argument("--ops", type=int, default=12,
                        help="operations per client stream")
    parser.add_argument("--events", type=int, default=10,
                        help="node-level chaos events to schedule")
    parser.add_argument("--restart", action="store_true",
                        help="run the crash-recovery campaign: killed nodes "
                             "restart from disk and rejoin mid-storm")
    parser.add_argument("--double-crash", action="store_true",
                        help="with --restart: also kill both owners of one "
                             "seeded key simultaneously")
    parser.add_argument("--lossy", action="store_true",
                        help="run the silent-failure campaign: seeded lossy/"
                             "corrupting links under the reliable transport, "
                             "plus bitflip storms with the e2e CRC armed")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the campaign twice and require identical "
                             "events, promotions, counters and digests")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw result dict as JSON instead of "
                             "the human-readable summary")
    args = parser.parse_args(argv)

    if args.restart and args.lossy:
        parser.error("--lossy is the base campaign only (not --restart)")

    def campaign():
        if args.restart:
            return run_restart_campaign(seed=args.seed, n_nodes=args.nodes,
                                        n_streams=args.streams,
                                        n_ops=args.ops, n_events=args.events,
                                        double_crash=args.double_crash)
        return run_fleet_campaign(seed=args.seed, n_nodes=args.nodes,
                                  n_streams=args.streams, n_ops=args.ops,
                                  n_events=args.events, lossy=args.lossy)

    result = campaign()
    if args.json:
        print(json.dumps(_jsonable(result), indent=2, sort_keys=True))
    else:
        print(render(result))

    failures = list(result["failures"])
    if args.check_determinism:
        rerun = campaign()
        if (fleet_determinism_fingerprint(result)
                != fleet_determinism_fingerprint(rerun)):
            failures.append("fleet campaign is not deterministic for seed %d"
                            % args.seed)
        else:
            print("determinism: re-run reproduced the campaign exactly")

    for failure in failures:
        print("FAIL: %s" % failure)
    if not failures:
        print("OK: zero lost acknowledged writes across %d events "
              "(%d kills) on seed %d"
              % (len(result["events"]), result["kills"], result["seed"]))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
