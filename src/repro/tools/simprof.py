"""simprof — per-subsystem wall-time breakdown of the perf scenarios.

Wraps :mod:`repro.bench.profile`: runs every perf-baseline scenario
under cProfile, attributes self-time to subsystems (engine / translate /
copy / trace / kernel / workload / other), prints a breakdown table and
writes the plain-data artifact for CI upload.

Usage::

    python -m repro.tools.simprof [-o simprof.json] [--names a,b] [--top N]

The table shows, per scenario, the honest (un-instrumented) wall time
and each subsystem's share of the profiled self-time.  Exit is non-zero
only on operational errors — this tool observes, the perfdiff gate
judges.
"""

import argparse
import json

from repro.bench.profile import SUBSYSTEMS, profile_suite


def render(artifact):
    lines = []
    subsystems = artifact.get("subsystems", list(SUBSYSTEMS))
    header = "%-24s %7s " % ("scenario", "wall s")
    header += " ".join("%9s" % name for name in subsystems)
    lines.append("== Simulator wall-time breakdown (cProfile self-time %) ==")
    lines.append(header)
    lines.append("-" * len(header))
    for name, data in artifact["scenarios"].items():
        total = data["profiled_s"] or 1.0
        row = "%-24s %7.3f " % (name, data["wall_s"])
        row += " ".join(
            "%8.1f%%" % (100.0 * data["subsystems"].get(sub, 0.0) / total)
            for sub in subsystems)
        lines.append(row)
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="simprof",
        description="Per-subsystem wall-time breakdown of the perf scenarios.")
    parser.add_argument("-o", "--out", default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--names", default=None,
                        help="comma-separated subset of scenario names")
    parser.add_argument("--top", type=int, default=10,
                        help="hottest functions to record per scenario")
    args = parser.parse_args(argv)

    names = None
    if args.names:
        names = [n.strip() for n in args.names.split(",") if n.strip()]
    artifact = profile_suite(names=names, top=args.top)
    print(render(artifact))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        print("\nwrote %s" % args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
