"""Interpreter executing CopierGen IR programs on the simulator.

Runs a ported (or original) program against a real CopierClient so the
pass can be *validated*: the async program must produce byte-identical
buffers to the sync one — CopierGen's correctness criterion.
"""

from repro.sim import Compute


class Interpreter:
    """Executes IR programs; symbolic buffer bases map to real VAs."""

    def __init__(self, system, proc, buffers):
        """``buffers``: {base_name: (va, length)} pre-mapped regions."""
        self.system = system
        self.proc = proc
        self.buffers = dict(buffers)
        self.loads = {}
        self.external_calls = []
        self.freed = []

    def _va(self, addr):
        base, offset = addr
        va, length = self.buffers[base]
        if offset < 0 or offset > length:
            raise ValueError("offset outside buffer %r" % (base,))
        return va + offset

    def run(self, program):
        """Generator: execute each op with simulated timing."""
        system, proc = self.system, self.proc
        for operation in program:
            kind = operation[0]
            if kind == "memcpy":
                _k, dst, src, n = operation
                yield from system.sync_copy(
                    proc, proc.aspace, self._va(src),
                    proc.aspace, self._va(dst), n, engine="avx")
            elif kind == "amemcpy":
                _k, dst, src, n = operation
                yield from proc.client.amemcpy(self._va(dst),
                                               self._va(src), n)
            elif kind == "csync":
                _k, addr, n = operation
                yield from proc.client.csync(self._va(addr), n)
            elif kind == "load":
                _k, var, addr, n = operation
                self.loads[var] = proc.read(self._va(addr), n)
            elif kind == "store":
                _k, addr, n = operation
                proc.write(self._va(addr), bytes([0xEE]) * n)
            elif kind == "call_ext":
                _k, addr, n = operation
                self.external_calls.append(proc.read(self._va(addr), n))
            elif kind == "free":
                _k, addr, n = operation
                self.freed.append((addr, n))
            elif kind == "publish":
                _k, addr, n = operation
                # Visibility point: nothing to do data-wise in 1 thread.
                yield Compute(50, tag="app")
            elif kind == "compute":
                yield Compute(operation[1], tag="app")
            else:
                raise ValueError("unknown op %r" % (kind,))
