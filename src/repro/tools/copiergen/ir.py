"""A small SSA-free IR standing in for LLVM/MLIR (§5.1.3).

CopierGen's key insight is that an IR constrains data access to a handful
of operations (load/store/call), giving well-defined insertion points for
csync.  This miniature IR has exactly those operations:

* ``("memcpy", dst, src, n)`` — the copy to asyncify.
* ``("load", var, addr, n)`` / ``("store", addr, n)`` — data accesses.
* ``("call_ext", addr, n)`` — passing a buffer to an external function
  (guideline 3: sync before strchr-style consumers).
* ``("free", addr, n)`` — buffer release (guideline 2).
* ``("publish", addr, n)`` — making a range visible to another thread
  (guideline 4: sync before page-table/flag updates).
* ``("compute", cycles)`` — opaque work.

Addresses are symbolic ``(base, offset)`` pairs; ``base`` names a buffer,
so the pass can reason about ranges without a points-to analysis — the
"basic cases like arrays" the paper's CopierGen validates.
"""


class Program:
    def __init__(self, ops=None):
        self.ops = list(ops or [])

    def append(self, operation):
        self.ops.append(operation)
        return self

    def __iter__(self):
        return iter(self.ops)

    def __len__(self):
        return len(self.ops)

    def __eq__(self, other):
        return isinstance(other, Program) and self.ops == other.ops

    def __repr__(self):
        return "Program(%r)" % (self.ops,)


def op(kind, *args):
    return (kind,) + args


OP_KINDS = {"memcpy", "amemcpy", "csync", "load", "store", "call_ext",
            "free", "publish", "compute"}


def validate(program):
    for operation in program:
        if operation[0] not in OP_KINDS:
            raise ValueError("unknown op %r" % (operation[0],))
    return True
