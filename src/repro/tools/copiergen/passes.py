"""CopierGen transformation passes (§5.1.3).

``CsyncInsertionPass`` implements the paper's porting recipe mechanically:

1. rewrite every ``memcpy`` into ``amemcpy``;
2. walking forward, keep the set of *pending* async ranges (dst ranges
   not yet csynced, and src ranges whose write would race the copy);
3. before any access that touches a pending range per the §5.1.1
   guidelines — direct dst access, src write, external call, free,
   cross-thread publish — insert the narrowest covering ``csync``.

Ranges are symbolic ``(base, offset, length)`` with distinct bases assumed
disjoint (arrays — the validated "basic cases"; pointer aliasing is the
paper's future work too).
"""

from repro.tools.copiergen.ir import Program


def _ranges_overlap(a, b):
    if a[0] != b[0]:
        return False
    return a[1] < b[1] + b[2] and b[1] < a[1] + a[2]


class _PendingCopy:
    __slots__ = ("dst", "src")

    def __init__(self, dst, src):
        self.dst = dst
        self.src = src


class CsyncInsertionPass:
    """The rewrite; stateless between runs."""

    def run(self, program):
        out = Program()
        pending = []
        for operation in program:
            kind = operation[0]
            if kind == "memcpy":
                _k, dst, src, n = operation
                dst_r = (dst[0], dst[1], n)
                src_r = (src[0], src[1], n)
                # Guideline: an amemcpy reading a pending dst, or writing a
                # pending src/dst, orders through Copier's dependency
                # tracking — no csync needed (amemcpy is not an access).
                out.append(("amemcpy", dst, src, n))
                pending.append(_PendingCopy(dst_r, src_r))
            elif kind in ("load", "call_ext"):
                if kind == "load":
                    _k, _var, addr, n = operation
                else:
                    _k, addr, n = operation
                self._sync_reads(out, pending, (addr[0], addr[1], n))
                out.append(operation)
            elif kind == "store":
                _k, addr, n = operation
                self._sync_writes(out, pending, (addr[0], addr[1], n))
                out.append(operation)
            elif kind in ("free", "publish"):
                _k, addr, n = operation
                self._sync_writes(out, pending, (addr[0], addr[1], n))
                out.append(operation)
            else:
                out.append(operation)
        return out

    # A read must sync pending *destinations* it touches.
    def _sync_reads(self, out, pending, touched):
        for copy in list(pending):
            if _ranges_overlap(copy.dst, touched):
                lo = max(copy.dst[1], touched[1])
                hi = min(copy.dst[1] + copy.dst[2], touched[1] + touched[2])
                out.append(("csync", (copy.dst[0], lo), hi - lo))
                if lo <= copy.dst[1] and hi >= copy.dst[1] + copy.dst[2]:
                    pending.remove(copy)

    # A write (or free/publish) must sync pending dsts AND pending srcs.
    def _sync_writes(self, out, pending, touched):
        self._sync_reads(out, pending, touched)
        for copy in list(pending):
            if _ranges_overlap(copy.src, touched):
                # Sync via the *destination* address (csync takes the dst).
                offset = max(copy.src[1], touched[1]) - copy.src[1]
                length = min(copy.src[1] + copy.src[2],
                             touched[1] + touched[2]) - \
                    (copy.src[1] + offset)
                out.append(("csync",
                            (copy.dst[0], copy.dst[1] + offset), length))
                pending.remove(copy)


class CsyncCoalescingPass:
    """Remove redundant csyncs (§5.1.1's over-sync warning, mechanized).

    A csync is redundant when an earlier csync already covers its range
    and no amemcpy touching that range was submitted in between; adjacent
    csyncs on contiguous ranges of the same buffer merge into one.  Both
    situations arise naturally from the insertion pass instrumenting
    per-access.
    """

    def run(self, program):
        out = Program()
        synced = []  # (base, start, end) ranges known consistent
        for operation in program:
            kind = operation[0]
            if kind == "amemcpy":
                _k, dst, _src, n = operation
                synced = [r for r in synced
                          if not _ranges_overlap(r, (dst[0], dst[1], n))]
                out.append(operation)
            elif kind == "csync":
                _k, addr, n = operation
                if self._covered(synced, (addr[0], addr[1], n)):
                    continue  # redundant: drop it
                merged = self._try_merge(out, addr, n)
                if not merged:
                    out.append(operation)
                synced.append((addr[0], addr[1], n))
            else:
                out.append(operation)
        return out

    @staticmethod
    def _covered(synced, needed):
        """True if the union of synced ranges covers ``needed``."""
        base, start, length = needed
        remaining = [(start, start + length)]
        for s_base, s_start, s_len in synced:
            if s_base != base:
                continue
            next_remaining = []
            for lo, hi in remaining:
                cut_lo = max(lo, s_start)
                cut_hi = min(hi, s_start + s_len)
                if cut_lo >= cut_hi:
                    next_remaining.append((lo, hi))
                    continue
                if lo < cut_lo:
                    next_remaining.append((lo, cut_lo))
                if cut_hi < hi:
                    next_remaining.append((cut_hi, hi))
            remaining = next_remaining
            if not remaining:
                return True
        return not remaining

    @staticmethod
    def _try_merge(out, addr, n):
        """Extend a directly preceding contiguous csync in place."""
        if not out.ops:
            return False
        prev = out.ops[-1]
        if prev[0] != "csync":
            return False
        _k, p_addr, p_n = prev
        if p_addr[0] != addr[0]:
            return False
        if p_addr[1] + p_n == addr[1]:
            out.ops[-1] = ("csync", p_addr, p_n + n)
            return True
        if addr[1] + n == p_addr[1]:
            out.ops[-1] = ("csync", addr, p_n + n)
            return True
        return False


def port_program(program, coalesce=True):
    """One-call porting: insert csyncs, then strip the redundant ones."""
    ported = CsyncInsertionPass().run(program)
    if coalesce:
        ported = CsyncCoalescingPass().run(ported)
    return ported
