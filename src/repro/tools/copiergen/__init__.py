"""CopierGen: compiler-assisted porting to async copy (§5.1.3)."""

from repro.tools.copiergen.ir import Program, op
from repro.tools.copiergen.passes import (
    CsyncCoalescingPass,
    CsyncInsertionPass,
    port_program,
)
from repro.tools.copiergen.interp import Interpreter

__all__ = ["Program", "op", "CsyncInsertionPass", "CsyncCoalescingPass",
           "port_program", "Interpreter"]
