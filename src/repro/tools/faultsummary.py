"""FaultSummary: run a canned stress workload under an armed fault plan
and report how the copy path degraded.

CI's fault-injection job runs this after the test suite and uploads the
output as an artifact: a human-readable record of which faults fired and
which recovery paths (retry, engine fallback, quarantine) absorbed them.
It doubles as a smoke check — the workload's final memory is compared
against a pure-Python reference and pins are checked for leaks, so a
non-zero exit means graceful degradation actually broke.

Usage::

    PYTHONPATH=src python -m repro.tools.faultsummary [--plan mixed]
        [--seed 1] [--ops 120]

``--plan``/``--seed`` default to ``COPIER_FAULT_PLAN``/``COPIER_FAULT_SEED``
(falling back to ``mixed`` / 0), so the CI job just exports the same
variables it runs the suite with.  ``--e2e-crc`` (or ``COPIER_E2E_CRC=1``)
arms the end-to-end copy CRC; with it on, the silent-corruption kinds in
``--plan integrity`` are detected and repaired, so the memory oracle still
holds.  ``frame_poison`` is the one exception: a poisoned copy aborts
loudly (that is its contract), the workload tolerates the
:class:`~repro.copier.errors.TaskPoisoned` at csync, and the byte-equality
check is skipped for that run — pins are still audited.
"""

import argparse
import os
import random
import sys

from repro.copier import CopierService
from repro.copier.errors import CopyAborted
from repro.faultinject import PLAN_NAMES, FaultPlan
from repro.hw import MachineParams
from repro.mem import AddressSpace, PhysicalMemory
from repro.sim import DEFAULT_RUN_LIMIT, Environment
from repro.tools import copierstat

N_BUFFERS = 4
BUF_BYTES = 32 * 1024
MAX_COPY_BYTES = 16 * 1024


def _initial(i):
    buf = bytearray(BUF_BYTES)
    for j in range(0, BUF_BYTES, 128):
        buf[j] = (i * 41 + j // 128) % 251
    return bytes(buf)


def _make_ops(seed, n_ops):
    """A deterministic op list: mostly large copies (so DMA runs form),
    with csyncs sprinkled in per the §5.1.1 guidelines."""
    rng = random.Random(("faultsummary", seed).__repr__())
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        offset = rng.randrange(0, BUF_BYTES - 4096, 64)
        length = rng.randrange(2048, min(MAX_COPY_BYTES, BUF_BYTES - offset))
        if roll < 0.75:
            src = rng.randrange(N_BUFFERS)
            dst = rng.choice([i for i in range(N_BUFFERS) if i != src])
            ops.append(("copy", src, dst, offset, length))
        else:
            ops.append(("csync", rng.randrange(N_BUFFERS), offset, length))
    return ops


def _reference(ops):
    bufs = [bytearray(_initial(i)) for i in range(N_BUFFERS)]
    for op in ops:
        if op[0] == "copy":
            _k, src, dst, offset, length = op
            bufs[dst][offset:offset + length] = \
                bufs[src][offset:offset + length]
    return [bytes(b) for b in bufs]


def run_workload(plan, n_ops=120, admission=None, e2e_crc=None):
    """Execute the canned workload under ``plan``; returns
    ``(service, aspace, bases, ops)`` after the run completes."""
    env = Environment(n_cores=2)
    params = MachineParams()
    phys = PhysicalMemory(8192)
    service = CopierService(env, params, fault_plan=plan,
                            admission=admission, e2e_crc=e2e_crc)
    aspace = AddressSpace(phys, name="app")
    client = service.create_client(aspace, name="app")
    bases = [aspace.mmap(BUF_BYTES, populate=True, contiguous=True)
             for i in range(N_BUFFERS)]
    for i, base in enumerate(bases):
        aspace.write(base, _initial(i))
    ops = _make_ops(plan.seed if plan is not None else 0, n_ops)

    def app():
        # A poisoned copy aborts with TaskPoisoned at the csync covering
        # its range; the workload shrugs and moves on (the service already
        # counted it), the same way a real app would field the signal.
        for op in ops:
            try:
                if op[0] == "copy":
                    _k, src, dst, offset, length = op
                    yield from client.amemcpy(bases[dst] + offset,
                                              bases[src] + offset, length)
                else:
                    _k, idx, offset, length = op
                    yield from client.csync(bases[idx] + offset, length)
            except CopyAborted:
                pass
        yield from client.csync_all()

    proc = env.spawn(app(), name="app", affinity=0)
    env.run_until(proc.terminated, limit=DEFAULT_RUN_LIMIT)
    return service, aspace, bases, ops


def check(service, aspace, bases, ops):
    """Return a list of failure strings (empty = degraded gracefully).

    A run that retired tasks poisoned skips the byte-equality oracle —
    those copies aborted by contract, so the buffers legitimately differ
    from the all-copies-land reference.  Pin audits always apply.
    """
    failures = []
    if not service.integrity.poisoned_tasks:
        expected = _reference(ops)
        for i, base in enumerate(bases):
            if aspace.read(base, BUF_BYTES) != expected[i]:
                failures.append("buffer %d diverged from the sync reference"
                                % i)
    leaked = aspace.pins_outstanding()
    if leaked:
        failures.append("%d page pins leaked" % leaked)
    lifecycle = service.stats_snapshot()["lifecycle"]
    if lifecycle["pins_outstanding"]:
        failures.append("%d pins outstanding service-wide"
                        % lifecycle["pins_outstanding"])
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="faultsummary", description=__doc__.split("\n\n")[0])
    parser.add_argument("--plan", choices=PLAN_NAMES,
                        default=os.environ.get("COPIER_FAULT_PLAN") or "mixed")
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get("COPIER_FAULT_SEED", "0")))
    parser.add_argument("--ops", type=int, default=120,
                        help="workload length (copies + csyncs)")
    parser.add_argument("--admission", default=None,
                        help="admission policy (default: COPIER_ADMISSION "
                             "or 'always')")
    parser.add_argument("--e2e-crc", action="store_true",
                        default=os.environ.get("COPIER_E2E_CRC", "") == "1",
                        help="arm the end-to-end copy CRC (default: "
                             "COPIER_E2E_CRC)")
    args = parser.parse_args(argv)

    plan = FaultPlan.named(args.plan, args.seed)
    service, aspace, bases, ops = run_workload(plan, n_ops=args.ops,
                                               admission=args.admission,
                                               e2e_crc=args.e2e_crc)
    print("faultsummary: %d ops under plan=%s seed=%d admission=%s" % (
        len(ops), args.plan, args.seed, service.admission.policy.name))
    print(copierstat.report(service))
    lifecycle = service.stats_snapshot()["lifecycle"]
    print("lifecycle: exit_reaped=%d efault_tasks=%d deferred_unmaps=%d "
          "drain_requeued=%d pins_outstanding=%d" % (
              lifecycle["exit_reaped"], lifecycle["efault_tasks"],
              lifecycle["deferred_unmaps"], lifecycle["drain_requeued"],
              lifecycle["pins_outstanding"]))
    failures = check(service, aspace, bases, ops)
    for failure in failures:
        print("FAIL: %s" % failure)
    if not failures:
        if service.integrity.poisoned_tasks:
            print("OK: %d poisoned tasks aborted cleanly, no leaked pins "
                  "(byte oracle skipped)" % service.integrity.poisoned_tasks)
        else:
            print("OK: memory matches the sync reference, no leaked pins")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
