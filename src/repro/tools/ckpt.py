"""ckpt: inspect, verify and self-test machine checkpoint files.

Subcommands::

    PYTHONPATH=src python -m repro.tools.ckpt info FILE
    PYTHONPATH=src python -m repro.tools.ckpt verify FILE
    PYTHONPATH=src python -m repro.tools.ckpt selftest [--seed N]
        [--plan mixed] [-o FILE] [--keep]

``info`` prints the envelope header and payload summary; ``verify``
decodes the whole file and exits 1 with the typed error name on any
damage (truncation, checksum, version, format); ``selftest`` runs a
canned KV workload, checkpoints it mid-run to ``FILE`` (default: a
file under ``COPIER_CKPT_DIR`` or the working directory), restores it
and exits 1 unless the restored machine finishes the workload with
identical counters, digests and stats to the uninterrupted run — the
same differential oracle ``tests/ckpt`` enforces, runnable anywhere.
"""

import argparse
import os
import sys

from repro.ckpt import Checkpoint, CheckpointError, checkpoint, restore
from repro.faultinject import FaultPlan
from repro.fleet.store import KVStore
from repro.kernel.system import System

QUANTUM = 20_000


def _ckpt_dir():
    return os.environ.get("COPIER_CKPT_DIR", ".")


def _script(seed, lo, hi):
    ops = []
    for i in range(lo, hi):
        key = b"st-k%d" % ((i * 7 + seed) % 5)
        ops.append((key, bytes([(i + seed) % 255 + 1]) * (1500 + 900 * i)))
    return ops


def _run_sets(system, store, ops):
    env = system.env
    for key, value in ops:
        out = []

        def runner(key=key, value=value, out=out):
            yield from store.set_op(key, value)
            out.append((yield from store.get_op(key)))

        env.spawn(runner(), name="ckpt-op")
        horizon = env.now
        while not out:
            horizon += QUANTUM
            env.step(max_cycles=horizon - env.now)
        if out[0] != value:
            raise SystemExit("selftest: read-back mismatch on %r" % key)


def cmd_info(args):
    try:
        ckpt = Checkpoint.load(args.file)
    except CheckpointError as exc:
        print("%s: %s" % (type(exc).__name__, exc))
        return 1
    size = os.path.getsize(args.file)
    meta = ckpt.meta
    print("checkpoint %s" % args.file)
    print("  file bytes       %d" % size)
    for key in sorted(meta):
        print("  %-16s %s" % (key, meta[key]))
    return 0


def cmd_verify(args):
    try:
        Checkpoint.load(args.file)
    except CheckpointError as exc:
        print("FAIL %s: %s" % (type(exc).__name__, exc))
        return 1
    print("OK %s" % args.file)
    return 0


def cmd_selftest(args):
    plan = (FaultPlan.named(args.plan, seed=args.seed)
            if args.plan else FaultPlan.from_env())
    path = args.output or os.path.join(
        _ckpt_dir(), "ckpt-selftest-%d.rckp" % args.seed)

    def build():
        system = System(copier_kwargs={"fault_plan": plan})
        store = KVStore(system, name="selftest-store")
        return system, store

    # Uninterrupted-but-checkpointed run: phase 1, snapshot, resume,
    # phase 2.
    system_a, store_a = build()
    _run_sets(system_a, store_a, _script(args.seed, 0, 6))
    ck = checkpoint(system_a, stores=[store_a])
    written = ck.save(path)
    system_a.copier.resume()
    _run_sets(system_a, store_a, _script(args.seed, 6, 10))
    snap_a = system_a.copier.stats_snapshot()

    # Restored run: load the file, phase 2 only.
    system_b, (store_b,) = restore(path)
    _run_sets(system_b, store_b, _script(args.seed, 6, 10))
    snap_b = system_b.copier.stats_snapshot()

    checks = [
        ("virtual clock", system_a.env.now == system_b.env.now),
        ("events executed",
         system_a.env.events_executed == system_b.env.events_executed),
        ("store digest", store_a.digest() == store_b.digest()),
        ("store counters", store_a.snapshot() == store_b.snapshot()),
        ("stats snapshot", snap_a == snap_b),
        ("leaked pins",
         system_a.leaked_pins() == 0 and system_b.leaked_pins() == 0),
    ]
    failed = [name for name, ok in checks if not ok]
    print("ckpt selftest: seed=%d plan=%s file=%s (%d bytes)"
          % (args.seed, plan.name if plan else "none", path, written))
    print("  now=%d events=%d keys=%d"
          % (system_a.env.now, system_a.env.events_executed,
             store_a.snapshot()["keys"]))
    for name, ok in checks:
        print("  %-16s %s" % (name, "ok" if ok else "MISMATCH"))
    if not args.keep:
        os.unlink(path)
    return 1 if failed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="ckpt", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_info = sub.add_parser("info", help="print envelope and payload summary")
    p_info.add_argument("file")
    p_info.set_defaults(func=cmd_info)
    p_verify = sub.add_parser("verify", help="decode and checksum a file")
    p_verify.add_argument("file")
    p_verify.set_defaults(func=cmd_verify)
    p_self = sub.add_parser("selftest",
                            help="checkpoint/restore differential oracle")
    p_self.add_argument("--seed", type=int,
                        default=int(os.environ.get("COPIER_FAULT_SEED", "0")))
    p_self.add_argument("--plan", default=None,
                        help="fault plan name (default: COPIER_FAULT_PLAN)")
    p_self.add_argument("-o", "--output", default=None,
                        help="checkpoint file path (default: under "
                             "COPIER_CKPT_DIR)")
    p_self.add_argument("--keep", action="store_true",
                        help="keep the checkpoint file")
    p_self.set_defaults(func=cmd_selftest)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
