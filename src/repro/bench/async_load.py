"""Closed-loop async load over the socket serving frontend.

Spawns N real asyncio client coroutines, each holding its own localhost
TCP connection to a :class:`~repro.serve.frontends.RedisSocketServer`,
and drives a closed-loop SET+GET script whose payloads round-trip
through simulated Copier tasks.  Every GET reply is verified
byte-for-byte against the value the client SET, so a passing run proves
the whole stack moved real data: socket → sim input buffer → amemcpy →
store → amemcpy → sim output buffer → socket.

The result records both time domains:

* ``wall_s`` — host seconds for the full run (connect to teardown);
* ``sim_cycles`` / ``events`` / ``sim_bytes`` — simulated counters,
  run-to-run deterministic under the default ``gate`` pacing policy
  (the perf-baseline suite asserts exactly that).

The run finishes with the leak audit the CI smoke gates on: zero parked
coroutines, zero leaked pins, and a clean ``CopierService.shutdown()``.

CLI: ``python -m repro.bench.async_load --clients 200 --requests 2``
(exit 1 on verification failures or leaks).
"""

import argparse
import asyncio
import json
import sys
import time

from repro.apps.common import encode_get, encode_set
from repro.serve import RedisSocketServer, SimDriver, encode_hello

_PAGE = 4096


def _value(cid, r, value_len):
    return bytes([(cid * 31 + r * 7) % 255 + 1]) * value_len


async def _client(port, cid, n_requests, value_len, errors, resets):
    """One closed-loop connection; returns verified wire requests.

    A connection error is a *verification failure* only when it
    truncates a reply mid-read — then bytes the server claimed to send
    were never checked.  An error at a reply boundary (every byte read
    so far verified, nothing of the next reply consumed) is a benign
    post-verification disconnect: servers tear sockets down during
    shutdown while clients are already done, and a reset there proves
    nothing about the data plane.  Those land in ``resets``.
    """
    verified = 0
    mid_reply = False

    async def read_reply(reader):
        nonlocal mid_reply
        status = await reader.readexactly(1)
        mid_reply = True  # a failure past here truncated a reply
        length = int.from_bytes(await reader.readexactly(8), "little")
        data = await reader.readexactly(length) if length else b""
        mid_reply = False
        return status, data

    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
    except OSError as exc:
        errors.append("client %d: connect failed: %s" % (cid, exc))
        return 0
    try:
        writer.write(encode_hello(cid))
        key = b"k%06d" % cid
        for r in range(n_requests):
            val = _value(cid, r, value_len)
            writer.write(encode_set(key, value_len) + val)
            await writer.drain()
            status, data = await read_reply(reader)
            if status != b"+" or data != b"":
                errors.append("client %d req %d: SET status %r" %
                              (cid, r, status))
                return verified
            verified += 1
            writer.write(encode_get(key))
            await writer.drain()
            status, data = await read_reply(reader)
            if status != b"+" or data != val:
                errors.append("client %d req %d: GET mismatch (%r, %d bytes)"
                              % (cid, r, status, len(data)))
                return verified
            verified += 1
    except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
        if mid_reply:
            errors.append("client %d: connection error mid-reply: %r"
                          % (cid, exc))
        else:
            resets.append("client %d: disconnect after %d verified "
                          "requests: %r" % (cid, verified, exc))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return verified


async def _run(n_clients, n_requests, value_len, pacing):
    from repro.kernel.system import System

    conn_buf = max(_PAGE, (value_len + _PAGE - 1) & ~(_PAGE - 1))
    # in + out are populated up front, the store faults on first touch;
    # size physical memory so 1000+ connections cannot run out of frames.
    frames = n_clients * 3 * (conn_buf // _PAGE) + 16384
    system = System(n_cores=4, phys_frames=max(65536, frames))
    driver = SimDriver(system=system, pacing=pacing,
                       expected_sessions=n_clients)
    server = RedisSocketServer(system, driver, max_conns=n_clients,
                               conn_buf_bytes=conn_buf,
                               store_bytes=conn_buf)
    errors = []
    resets = []
    t0 = time.perf_counter()
    async with driver:
        port = await server.start()
        verified_counts = await asyncio.gather(*[
            _client(port, cid, n_requests, value_len, errors, resets)
            for cid in range(n_clients)])
        await server.stop()
    wall = time.perf_counter() - t0
    parked = driver.parked_ops
    leaked = system.leaked_pins()
    shutdown = system.copier.shutdown()  # asserts zero pins itself
    result = {
        "app": "redis-sock",
        "pacing": driver.pacing.name,
        "clients": n_clients,
        "requests_per_client": n_requests,
        "value_bytes": value_len,
        "requests_served": server.requests_served,
        "requests_verified": sum(verified_counts),
        "errors": errors,
        "post_verification_resets": resets,
        "wall_s": wall,
        "sim_cycles": system.env.now,
        "events": system.env.events_executed,
        "sim_bytes": server.proc.client.stats.bytes_copied,
        "parked": parked,
        "leaked_pins": leaked,
        "shutdown_drained": shutdown["drained"],
        "shutdown_force_reaped": shutdown["force_reaped"],
        "serve": driver.snapshot(),
    }
    return result


def run_async_load(n_clients=200, n_requests=2, value_len=4096,
                   pacing="gate"):
    """Run the async load end to end; returns the result dict.

    Raises ``RuntimeError`` on any data-verification failure, leaked
    pin, or coroutine left parked after the run.  Post-verification
    disconnects (connection resets at a reply boundary, typically
    during shutdown) are recorded in the result but are not failures —
    every byte that was received got verified.
    """
    result = asyncio.run(_run(n_clients, n_requests, value_len, pacing))
    expected = n_clients * n_requests * 2
    if result["errors"]:
        raise RuntimeError("async load verification failed: %s"
                           % "; ".join(result["errors"][:5]))
    if result["post_verification_resets"]:
        # Some clients were cut off cleanly; the server must still have
        # served at least what the survivors verified.
        if result["requests_served"] < result["requests_verified"]:
            raise RuntimeError(
                "served %d requests but clients verified %d"
                % (result["requests_served"], result["requests_verified"]))
    elif result["requests_served"] != expected:
        raise RuntimeError("served %d of %d requests"
                           % (result["requests_served"], expected))
    if result["parked"]:
        raise RuntimeError("%d coroutines still parked after the run"
                           % result["parked"])
    if result["leaked_pins"]:
        raise RuntimeError("%d leaked pins after the run"
                           % result["leaked_pins"])
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Closed-loop async load over the socket frontend.")
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--requests", type=int, default=2,
                        help="SET+GET pairs per client")
    parser.add_argument("--value-bytes", type=int, default=4096)
    parser.add_argument("--pacing", default="gate",
                        help="free | ratio[:cycles_per_s] | gate")
    parser.add_argument("--json", default=None,
                        help="write the result dict here")
    args = parser.parse_args(argv)
    try:
        result = run_async_load(n_clients=args.clients,
                                n_requests=args.requests,
                                value_len=args.value_bytes,
                                pacing=args.pacing)
    except RuntimeError as exc:
        print("FAIL: %s" % exc, file=sys.stderr)
        return 1
    print("async_load: %d clients x %d reqs (%d B values, %s pacing)"
          % (result["clients"], result["requests_per_client"],
             result["value_bytes"], result["pacing"]))
    print("  wall %.3f s | sim %d cycles, %d events, %d bytes copied"
          % (result["wall_s"], result["sim_cycles"], result["events"],
             result["sim_bytes"]))
    print("  served %d requests | parked %d | leaked pins %d"
          % (result["requests_served"], result["parked"],
             result["leaked_pins"]))
    if result["post_verification_resets"]:
        print("  %d benign post-verification disconnects"
              % len(result["post_verification_resets"]))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
