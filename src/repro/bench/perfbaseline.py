"""Wall-clock perf baseline for the simulator substrate.

The repro's correctness story lives in simulated cycles, but the ROADMAP
north-star also demands the *host* substrate run "as fast as the hardware
allows".  This harness pins that down: it runs a fixed, deterministic
scenario suite (no wall-clock-dependent control flow, fixed seeds, fixed
sizes) and records, per scenario:

* ``wall_s``            — best-of-N wall-clock seconds for the scenario;
* ``sim_cycles``        — simulated cycles consumed (must not drift when a
                          host-side fast path lands — the determinism oracle);
* ``events``            — simulator events executed;
* ``sim_bytes``         — simulated bytes moved by the scenario;
* ``events_per_s``      — host-side event-loop throughput;
* ``sim_bytes_per_s``   — host-side copy-plane throughput.

``python -m repro.bench.perfbaseline -o BENCH_perf.json`` writes the
committed baseline; ``repro.tools.perfdiff`` compares two baseline files
and gates CI on wall-clock regressions (sim-side drift is reported as a
determinism warning, not a perf failure).

Scenario suite (keep this list stable — CI diffs by scenario name):

* ``raw_copy_64k`` / ``raw_copy_256k`` — the Fig. 9 raw-copy-throughput
  driver through the full Copier path (the acceptance scenario);
* ``raw_copy_sync_avx`` — the synchronous baseline path (exercises
  ``sync_copy``/``user_memcpy`` rather than the service);
* ``redis_set_16k`` — a Fig. 11 Redis slice (SET, 16 KB values);
* ``overload_burst_2x`` — the open-loop overload driver at 2x load with
  the deadline-feasible admission valve;
* ``async_redis_1k_gate`` — 1000 real asyncio client coroutines over
  localhost sockets driving the serving frontend under the
  deterministic ``gate`` pacing policy (``bench/async_load.py``); the
  sim counters double as the lockstep-determinism oracle.
* ``fleet_failover`` — closed-loop sharded SET/GET streams against a
  3-node fleet with a forced node kill halfway through: aggregate p99
  latency in cycles spans organic failure detection, backup promotion
  and resync (pure sim — no sockets, explicit fleet knobs so
  ``COPIER_FLEET_*`` env cannot perturb the pinned counters).
* ``fleet_lossy_links`` — the same sharded traffic over links that
  drop/dup/reorder/corrupt at fixed rates, carried by the reliable
  exactly-once transport: pins the goodput, retransmit overhead ratio
  and p99 cost of surviving a hostile wire.
"""

import argparse
import json
import sys
import time


#: Bump when scenario definitions change incompatibly.
SCHEMA = 1

#: Fixed seed recorded in the metadata: every scenario is deterministic by
#: construction (fault injection disarmed, no host-randomness), the seed
#: documents that contract for future stochastic scenarios.
SEED = 0


def _scenario_raw_copy(mode, task_bytes, n_tasks):
    from repro.bench.workloads import raw_copy_throughput

    def run(recorder):
        bytes_per_cycle = raw_copy_throughput(mode, task_bytes, n_tasks)
        recorder["sim_bytes"] = task_bytes * n_tasks
        recorder["bytes_per_cycle"] = bytes_per_cycle
    return run


def _scenario_redis(op, value_len):
    from repro.apps.rediskv import run_benchmark
    from repro.kernel import System

    def run(recorder):
        system = System(n_cores=4, copier=True, phys_frames=262144)
        _server, merged, _elapsed = run_benchmark(
            system, "copier", op, value_len, n_requests=8, n_clients=4)
        recorder["sim_bytes"] = merged.count * value_len
        recorder["requests"] = merged.count
    return run


def _scenario_overload(load):
    from repro.bench.workloads import overload_burst

    def run(recorder):
        res = overload_burst(policy="deadline-feasible", load=load,
                             n_tasks=96, task_bytes=64 * 1024)
        recorder["sim_bytes"] = 96 * 64 * 1024
        recorder["served"] = (len(res["done_latencies"])
                              + len(res["shed_latencies"]))
    return run


def _scenario_async_load(n_clients, n_requests, value_len):
    from repro.bench.async_load import run_async_load

    def run(recorder):
        res = run_async_load(n_clients=n_clients, n_requests=n_requests,
                             value_len=value_len, pacing="gate")
        recorder["sim_bytes"] = res["sim_bytes"]
        recorder["requests"] = res["requests_served"]
    return run


def _scenario_fleet_failover(n_nodes=3, n_streams=4, n_ops=10,
                             value_bytes=8 * 1024):
    def run(recorder):
        from repro.fleet import Fleet

        fleet = Fleet(n_nodes=n_nodes, link_latency_cycles=20_000,
                      link_bytes_per_cycle=16.0, lfd_period_cycles=100_000,
                      gfd_timeout_cycles=400_000)
        total = n_streams * n_ops
        kill_after = total // 2
        victim = n_nodes - 1
        streams = [{"done": 0, "pending": None, "idx": 0}
                   for _ in range(n_streams)]
        latencies = []
        completed = abandoned = sim_bytes = rounds = 0
        killed = False

        while any(s["done"] < n_ops or s["pending"] is not None
                  for s in streams):
            rounds += 1
            if rounds > 400_000:
                raise RuntimeError("fleet_failover scenario stalled")
            for sid, s in enumerate(streams):
                op = s["pending"]
                if op is not None:
                    if op.done:
                        s["pending"] = None
                        s["done"] += 1
                        completed += 1
                        if op.latency_cycles is not None:
                            latencies.append(op.latency_cycles)
                    elif not fleet.nodes[op.gateway_id].alive:
                        # Connection to the killed gateway dropped.
                        s["pending"] = None
                        s["done"] += 1
                        abandoned += 1
                    else:
                        continue
                if s["done"] >= n_ops or s["pending"] is not None:
                    continue
                idx = s["idx"]
                s["idx"] += 1
                key = b"p%d-k%d" % (sid, idx % 4)
                live = fleet.live_nodes
                gw = live[(sid + idx) % len(live)].node_id
                if idx % 3 == 2:
                    s["pending"] = fleet.get(key, gateway=gw)
                else:
                    value = bytes([(sid * 31 + idx) % 251]) * value_bytes
                    sim_bytes += value_bytes
                    s["pending"] = fleet.set(key, value, gateway=gw)
            if not killed and completed >= kill_after:
                fleet.kill_node(victim)
                killed = True
            fleet.stepper.step_round()

        fleet.stepper.settle(100)  # let the post-promotion resync finish
        if not fleet.promotions:
            raise RuntimeError("forced kill was never detected")
        if fleet.leaked_pins():
            raise RuntimeError("fleet leaked page pins")
        latencies.sort()
        recorder["sim_bytes"] = sim_bytes
        recorder["requests"] = completed
        recorder["abandoned"] = abandoned
        recorder["promotions"] = len(fleet.promotions)
        recorder["p99_cycles"] = latencies[int(0.99 * (len(latencies) - 1))]
    return run


def _scenario_fleet_restart_recovery(n_nodes=4, n_keys=24,
                                     value_bytes=8 * 1024):
    """Kill → declare → restart → rejoin, measured end to end.

    The victim's recovery time (restart to resync-drained, the fleet's
    MTTR) is the headline sim-side number; the scenario also pins the
    disk-replay and delta-resync counters so a regression in either
    shows up as a strict-sim diff.
    """
    def run(recorder):
        from repro.fleet import Fleet

        fleet = Fleet(n_nodes=n_nodes, link_latency_cycles=20_000,
                      link_bytes_per_cycle=16.0, lfd_period_cycles=100_000,
                      gfd_timeout_cycles=400_000, ckpt_period=64)
        keys = [b"r-k%d" % i for i in range(n_keys)]
        sim_bytes = 0
        ops = []
        for i, key in enumerate(keys):
            value = bytes([(i * 37) % 251]) * value_bytes
            sim_bytes += value_bytes
            ops.append(fleet.set(key, value))
        fleet.run_ops(ops)
        victim = n_nodes - 1
        fleet.kill_node(victim)
        fleet.stepper.run_until(
            lambda: any(n == victim for _v, n in fleet.promotions))
        # Half the keys move forward while the victim is down, so the
        # rejoin has a real delta to push, not just a no-op handshake.
        ops = []
        for i, key in enumerate(keys[:n_keys // 2]):
            value = bytes([(i * 41 + 1) % 251]) * value_bytes
            sim_bytes += value_bytes
            ops.append(fleet.set(key, value))
        fleet.run_ops(ops)
        fleet.stepper.run_until(lambda: not fleet.resyncs_active)

        node = fleet.restart_node(victim)
        fleet.stepper.run_until(lambda: not fleet.recovering_nodes
                                and not fleet.resyncs_active)
        gets = fleet.run_ops([fleet.get(key) for key in keys])
        if any(op.error is not None or op.result is None for op in gets):
            raise RuntimeError("restart recovery lost data")
        if fleet.leaked_pins():
            raise RuntimeError("fleet leaked page pins")
        recorder["sim_bytes"] = sim_bytes
        recorder["requests"] = len(keys) + n_keys // 2 + len(gets)
        recorder["promotions"] = len(fleet.promotions)
        recorder["restarts"] = len(fleet.restarts)
        recorder["recovered_keys"] = node.counters["recovered_keys"]
        recorder["rejoin_pushed"] = sum(
            peer.counters.get("rejoin_pushed", 0) for peer in fleet.nodes)
        recorder["mttr_cycles"] = node.counters["recovery_cycles"]
    return run


def _scenario_fleet_lossy_links(n_nodes=3, n_streams=4, n_ops=12,
                                value_bytes=8 * 1024):
    """Sharded SET/GET traffic over a fixed-rate lossy wire.

    Every link drops, duplicates, reorders and corrupts frames at the
    pinned rates below; the reliable exactly-once channel absorbs it.
    The recorded retransmit ratio and CRC-drop count are the overhead
    of surviving the hostile wire — a transport regression (extra
    retransmits, wedged streams) moves them and fails the strict-sim
    gate.
    """
    def run(recorder):
        from repro.fleet import Fleet
        from repro.fleet.interconnect import LinkFaultPlan

        plan = LinkFaultPlan("perf", seed=0, drop_rate=0.10, dup_rate=0.05,
                             reorder_rate=0.10, reorder_window=4,
                             corrupt_rate=0.05)
        fleet = Fleet(n_nodes=n_nodes, link_latency_cycles=20_000,
                      link_bytes_per_cycle=16.0, lfd_period_cycles=100_000,
                      gfd_timeout_cycles=400_000, link_fault_plan=plan,
                      backoff_jitter_seed=0)
        sim_bytes = 0
        sets, gets = [], []
        values = {}
        for sid in range(n_streams):
            for idx in range(n_ops):
                # Unique key per op: concurrent rewrites of one key have
                # no deterministic winner to assert against.
                key = b"l%d-k%d" % (sid, idx)
                gw = (sid + idx) % n_nodes
                value = bytes([(sid * 29 + idx) % 251]) * value_bytes
                values[key] = value
                sim_bytes += value_bytes
                sets.append(fleet.set(key, value, gateway=gw))
        fleet.run_ops(sets)
        if not all(op.acked for op in sets):
            raise RuntimeError("lossy wire lost an acknowledged write")
        for i, key in enumerate(sorted(values)):
            gets.append(fleet.get(key, gateway=i % n_nodes))
        fleet.run_ops(gets)
        for op in gets:
            if op.result != values[op.key]:
                raise RuntimeError("lossy wire served a wrong value")
        if fleet.leaked_pins():
            raise RuntimeError("fleet leaked page pins")
        latencies = sorted(op.latency_cycles for op in sets + gets
                           if op.latency_cycles is not None)
        transport = fleet.netpath_stats()
        totals = fleet.interconnect.stats()["totals"]
        recorder["sim_bytes"] = sim_bytes
        recorder["requests"] = len(sets) + len(gets)
        recorder["retransmits"] = transport["retransmits"]
        recorder["frames_sent"] = transport["frames_sent"]
        recorder["crc_dropped"] = transport["crc_dropped"]
        recorder["wire_lost"] = totals["lossy_dropped"]
        recorder["p99_cycles"] = latencies[int(0.99 * (len(latencies) - 1))]
    return run


def scenario_suite():
    """Ordered (name, runner) pairs; names are the CI diff keys."""
    return [
        ("raw_copy_64k", _scenario_raw_copy("copier", 64 * 1024, 48)),
        ("raw_copy_256k", _scenario_raw_copy("copier", 256 * 1024, 24)),
        ("raw_copy_sync_avx", _scenario_raw_copy("avx", 64 * 1024, 48)),
        ("redis_set_16k", _scenario_redis("SET", 16 * 1024)),
        ("overload_burst_2x", _scenario_overload(2.0)),
        ("async_redis_1k_gate", _scenario_async_load(1000, 2, 4096)),
        ("fleet_failover", _scenario_fleet_failover()),
        ("fleet_restart_recovery", _scenario_fleet_restart_recovery()),
        ("fleet_lossy_links", _scenario_fleet_lossy_links()),
    ]


def _measure(runner, repeat):
    """Run ``runner`` ``repeat`` times; wall-clock is the best (min) run.

    Sim-side numbers come from the last run — they are identical across
    runs by construction, and ``run_scenario`` asserts that.
    """
    import gc

    from repro.sim.engine import Environment

    best = None
    recorder = {}
    sim_signature = None
    for _ in range(repeat):
        recorder = {}
        gc.collect()
        events_before = _global_event_count()
        t0 = time.perf_counter()
        runner(recorder)
        wall = time.perf_counter() - t0
        recorder["events"] = _global_event_count() - events_before
        recorder["sim_cycles"] = _last_env_now()
        signature = (recorder.get("sim_cycles"), recorder.get("sim_bytes"))
        if sim_signature is None:
            sim_signature = signature
        elif signature != sim_signature:
            raise RuntimeError(
                "scenario is not deterministic across repeats: %r vs %r"
                % (signature, sim_signature))
        if best is None or wall < best:
            best = wall
    recorder["wall_s"] = best
    # Reset the interposer state for the next scenario.
    Environment._perf_last_now = 0
    return recorder


# ---------------------------------------------------------------- plumbing
#
# Scenario drivers construct their own Environment internally, so the
# harness observes them through two tiny interposers installed on the
# class: a global event counter and the last environment's final clock.

_orig_env_init = None


def _install_interposers():
    global _orig_env_init
    from repro.sim.engine import Environment

    if _orig_env_init is not None:
        return
    _orig_env_init = Environment.__init__
    Environment._perf_event_base = 0
    Environment._perf_last_now = 0
    Environment._perf_open = []

    def patched_init(self, *args, **kwargs):
        _orig_env_init(self, *args, **kwargs)
        Environment._perf_open.append(self)

    Environment.__init__ = patched_init


def _global_event_count():
    from repro.sim.engine import Environment

    live = Environment._perf_open
    total = Environment._perf_event_base + sum(
        env.events_executed for env in live)
    return total


def _last_env_now():
    from repro.sim.engine import Environment

    live = Environment._perf_open
    if not live:
        return Environment._perf_last_now
    # Fold finished environments into the base so the list stays short.
    last = live[-1]
    Environment._perf_last_now = last.now
    Environment._perf_event_base += sum(env.events_executed for env in live)
    del live[:]
    return Environment._perf_last_now


# -------------------------------------------------------------------- main

def run_suite(repeat=3, quick=False, names=None):
    """Run the scenario suite; returns the baseline dict.

    Fault-injection and admission env knobs are disarmed for the duration
    (they would perturb the pinned scenarios); ``COPIER_SLOWPATH`` is
    honored so the slow path can be measured differentially.
    """
    import os

    _install_interposers()
    saved = {}
    for knob in ("COPIER_FAULT_PLAN", "COPIER_FAULT_SEED",
                 "COPIER_ADMISSION", "COPIER_CKPT_PERIOD",
                 "COPIER_LINK_FAULT_PLAN", "COPIER_LINK_FAULT_SEED",
                 "COPIER_E2E_CRC"):
        saved[knob] = os.environ.pop(knob, None)
    try:
        results = {}
        for name, runner in scenario_suite():
            if names and name not in names:
                continue
            rec = _measure(runner, 1 if quick else repeat)
            wall = rec["wall_s"]
            rec["events_per_s"] = rec["events"] / wall if wall else 0.0
            sim_bytes = rec.get("sim_bytes", 0)
            rec["sim_bytes_per_s"] = sim_bytes / wall if wall else 0.0
            results[name] = rec
    finally:
        for knob, value in saved.items():
            if value is not None:
                os.environ[knob] = value
    return {
        "schema": SCHEMA,
        "seed": SEED,
        "repeat": 1 if quick else repeat,
        "python": sys.version.split()[0],
        "slowpath": os.environ.get("COPIER_SLOWPATH") == "1",
        "scenarios": results,
    }


def render(baseline):
    from repro.bench.report import ResultTable

    table = ResultTable(
        "Perf baseline (wall-clock, best of %d)" % baseline["repeat"],
        ["scenario", "wall s", "sim Mcyc", "events/s", "sim MB/s"])
    for name, rec in baseline["scenarios"].items():
        table.add(name, rec["wall_s"], rec["sim_cycles"] / 1e6,
                  rec["events_per_s"], rec["sim_bytes_per_s"] / 1e6)
    return table.render()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Record the wall-clock perf baseline suite.")
    parser.add_argument("-o", "--output", default=None,
                        help="write the baseline JSON here")
    parser.add_argument("--repeat", type=int, default=3,
                        help="runs per scenario; wall-clock is the best")
    parser.add_argument("--quick", action="store_true",
                        help="single run per scenario (CI smoke)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    args = parser.parse_args(argv)
    baseline = run_suite(repeat=args.repeat, quick=args.quick,
                         names=args.scenario)
    print(render(baseline))
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("\nwrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
