"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.report import ResultTable, improvement

__all__ = ["ResultTable", "improvement"]
