"""Request-size distributions from the traces the paper cites (§2.2).

The paper motivates general copy support with production size mixes:
95.1 % of Twitter memcached requests and 69.8 % of AliCloud block-service
requests are ≤10 KB.  This module provides deterministic CDF samplers
shaped to those statements for the workload drivers.
"""

import bisect


class SizeDistribution:
    """A discrete size distribution with deterministic sampling."""

    def __init__(self, points, name=""):
        """``points``: [(size_bytes, weight), ...]; weights need not sum
        to anything in particular."""
        if not points:
            raise ValueError("empty distribution")
        self.name = name
        self.sizes = [s for s, _w in points]
        total = float(sum(w for _s, w in points))
        self.cdf = []
        acc = 0.0
        for _size, weight in points:
            acc += weight / total
            self.cdf.append(acc)

    def sample(self, u):
        """Sample by a uniform value in [0, 1)."""
        if not 0.0 <= u < 1.0:
            raise ValueError("u must be in [0, 1)")
        return self.sizes[bisect.bisect_right(self.cdf, u)]

    def sequence(self, n, seed=12345):
        """A deterministic length-``n`` sample stream (LCG-driven)."""
        state = seed & 0x7FFFFFFF
        out = []
        for _ in range(n):
            state = (1103515245 * state + 12345) & 0x7FFFFFFF
            out.append(self.sample(state / float(0x80000000)))
        return out

    def fraction_leq(self, size):
        """CDF value at ``size`` (for checking shape claims)."""
        total = 0.0
        prev = 0.0
        for s, c in zip(self.sizes, self.cdf):
            if s <= size:
                total = c
            prev = c
        return total


#: Twitter memcached-style mix: 95.1 % of requests ≤10 KB (§2.2).
TWITTER_CACHE = SizeDistribution(
    [(128, 28), (512, 27), (2048, 22), (8192, 18.1),
     (32768, 3.4), (131072, 1.5)],
    name="twitter-memcached",
)

#: AliCloud block-service-style mix: 69.8 % of requests ≤10 KB (§2.2).
ALICLOUD_BLOCK = SizeDistribution(
    [(4096, 45), (8192, 24.8), (16384, 12), (65536, 10),
     (262144, 6), (1048576, 2.2)],
    name="alicloud-block",
)
