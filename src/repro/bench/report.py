"""Result tables printed by every benchmark, paper-vs-measured style."""


def improvement(baseline, measured):
    """Relative improvement of ``measured`` over ``baseline`` for a
    lower-is-better metric (latency): positive = faster."""
    if baseline == 0:
        return 0.0
    return 1.0 - measured / baseline


def speedup(baseline, measured):
    """Throughput-style ratio: measured / baseline."""
    if baseline == 0:
        return 0.0
    return measured / baseline


class ResultTable:
    """A fixed-column text table, printed under a caption.

    Every benchmark emits one of these so the regenerated figure/table can
    be eyeballed against the paper (EXPERIMENTS.md records both).
    """

    def __init__(self, caption, columns):
        self.caption = caption
        self.columns = list(columns)
        self.rows = []

    def add(self, *values):
        if len(values) != len(self.columns):
            raise ValueError("row width mismatch")
        self.rows.append([_fmt(v) for v in values])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = ["", "== %s ==" % self.caption]
        lines.append("  ".join(c.ljust(w) for c, w in
                               zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self):
        print(self.render())


def stage_breakdown_table(stages, caption="Copy-path stage latency"):
    """Build a :class:`ResultTable` from a trace-bus stage breakdown.

    ``stages`` is ``service.stats_snapshot()["stages"]`` (equivalently a
    :class:`repro.sim.trace.StageAggregator`'s ``as_dict()``): per-stage
    submit→ingest→execute→complete latency samples for every task the
    service retired.
    """
    from repro.sim.trace import STAGE_NAMES

    table = ResultTable(caption, ["stage", "tasks", "mean cyc", "max cyc"])
    for name in STAGE_NAMES:
        stage = stages["stages"][name]
        table.add(name.replace("_to_", " -> "), stage["count"],
                  stage["mean"], stage["max"])
    return table


def percentile(samples, fraction):
    """Nearest-rank percentile of ``samples`` (0 for an empty list)."""
    if not samples:
        return 0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


def overload_table(results, caption="Overload: shed vs queue tail latency"):
    """Build a :class:`ResultTable` from :func:`repro.bench.workloads.
    overload_burst` results (one row per run).

    The latency columns pool every *served* outcome — completions and
    bounded synchronous sheds — because that is what a submitter
    experiences; deadline-missed tasks are lost work and get their own
    column instead of polluting the tail.
    """
    table = ResultTable(caption, [
        "policy", "load", "done", "shed", "missed", "rejected",
        "p50 cyc", "p99 cyc", "max cyc", "starved"])
    for res in results:
        served = res["done_latencies"] + res["shed_latencies"]
        wd = res["overload"]["watchdog"]
        starved = ",".join(wd["starved_clients"]) or \
            ("yes" if wd["starvation_alerts"] else "-")
        table.add(res["policy"], res["load"], len(res["done_latencies"]),
                  len(res["shed_latencies"]), len(res["miss_latencies"]),
                  res["overload"]["rejected"],
                  percentile(served, 0.50), percentile(served, 0.99),
                  max(served) if served else 0, starved)
    return table


def _fmt(value):
    if isinstance(value, float):
        if abs(value) < 10:
            return "%.3f" % value
        return "%.1f" % value
    return str(value)


def size_label(nbytes):
    if nbytes >= 1 << 20:
        return "%dMB" % (nbytes >> 20)
    if nbytes >= 1024:
        return "%dKB" % (nbytes >> 10)
    return "%dB" % nbytes
