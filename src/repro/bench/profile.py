"""Where does the wall-clock go?  cProfile over the perf-baseline suite.

:mod:`repro.bench.perfbaseline` answers "how fast"; this module answers
"why".  Each scenario runs twice: once un-instrumented under
``time.perf_counter`` (the honest wall number, same as perfbaseline),
once under :mod:`cProfile` with every function's self-time attributed to
a *subsystem* by source path — engine (event loop, processes, cores),
translate (address spaces, page tables, physical memory), copy (Copier
service + hardware engines), trace (stats and trace buses), kernel,
workload (apps/bench/serve/fleet drivers), and other (stdlib).  The
result is a plain-data breakdown artifact, so a perf PR can show *where*
the time went instead of just totals — and a regression in CI points at
a subsystem, not at a scenario.

Profiling does not perturb the simulation: the cycle counters of the
profiled run are asserted identical to the un-instrumented run.
"""

import cProfile
import pstats
import sys
import time

from repro.bench import perfbaseline

#: Ordered (subsystem, path fragments) rules; first match wins.  The
#: trace bus lives under ``sim/`` but is its own line item — it is the
#: classic hidden cost of an instrumented simulator.
SUBSYSTEM_RULES = (
    ("trace", ("repro/sim/trace", "repro/sim/stats")),
    ("engine", ("repro/sim/",)),
    ("translate", ("repro/mem/",)),
    ("copy", ("repro/copier/", "repro/hw/")),
    ("kernel", ("repro/kernel/",)),
    ("workload", ("repro/apps/", "repro/bench/", "repro/serve/",
                  "repro/fleet/", "repro/ckpt/", "repro/api/")),
)

SUBSYSTEMS = tuple(name for name, _ in SUBSYSTEM_RULES) + ("other",)


def classify(filename):
    """Map a profiled source path to its subsystem name."""
    path = filename.replace("\\", "/")
    for name, fragments in SUBSYSTEM_RULES:
        for fragment in fragments:
            if fragment in path:
                return name
    return "other"


def profile_scenario(runner, top=10):
    """Profile one perfbaseline runner; returns a plain-data breakdown.

    ``wall_s`` is the un-instrumented wall time; ``profiled_s`` is the
    (slower) instrumented total that the per-subsystem seconds sum to.
    """
    recorder = {}
    runner(recorder)  # warm: imports, first-touch allocations
    recorder = {}
    t0 = time.perf_counter()
    runner(recorder)
    wall = time.perf_counter() - t0
    baseline_sig = (recorder.get("sim_bytes"), perfbaseline._last_env_now())

    profiler = cProfile.Profile()
    recorder = {}
    profiler.enable()
    runner(recorder)
    profiler.disable()
    profiled_sig = (recorder.get("sim_bytes"), perfbaseline._last_env_now())
    if profiled_sig != baseline_sig:
        raise RuntimeError(
            "profiling perturbed the simulation: %r vs %r"
            % (profiled_sig, baseline_sig))

    stats = pstats.Stats(profiler)
    subsystems = {name: 0.0 for name in SUBSYSTEMS}
    functions = []
    profiled_total = 0.0
    for (filename, lineno, funcname), (_cc, ncalls, tottime, _cum, _callers) \
            in stats.stats.items():
        profiled_total += tottime
        subsystems[classify(filename)] += tottime
        functions.append((tottime, ncalls, filename, lineno, funcname))
    functions.sort(reverse=True)
    top_functions = [
        {
            "self_s": round(tottime, 6),
            "calls": ncalls,
            "where": "%s:%d:%s" % (_shorten(filename), lineno, funcname),
        }
        for tottime, ncalls, filename, lineno, funcname in functions[:top]
    ]
    return {
        "wall_s": wall,
        "profiled_s": round(profiled_total, 6),
        "subsystems": {name: round(secs, 6)
                       for name, secs in subsystems.items()},
        "top_functions": top_functions,
    }


def _shorten(filename):
    path = filename.replace("\\", "/")
    marker = "repro/"
    i = path.rfind(marker)
    return path[i:] if i >= 0 else path


def profile_suite(names=None, top=10):
    """Profile every (or the named) perfbaseline scenario.

    Returns the artifact dict; ``schema`` guards downstream parsers.
    """
    perfbaseline._install_interposers()
    suite = perfbaseline.scenario_suite()
    if names:
        known = {name for name, _ in suite}
        unknown = set(names) - known
        if unknown:
            raise SystemExit("unknown scenario(s): %s" % ", ".join(sorted(unknown)))
        suite = [(name, runner) for name, runner in suite if name in names]
    scenarios = {}
    for name, runner in suite:
        scenarios[name] = profile_scenario(runner, top=top)
    return {
        "schema": 1,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "subsystems": list(SUBSYSTEMS),
        "scenarios": scenarios,
    }
