"""Reusable workload drivers for the benchmark suite."""

from repro.copier.errors import AdmissionReject
from repro.kernel import System
from repro.kernel.net import recv, send, socket_pair
from repro.sim import DEFAULT_RUN_LIMIT, Timeout


def raw_copy_throughput(mode, task_bytes, n_tasks, repetition=0.0,
                        atcache=True, n_cores=3):
    """Fig. 9 driver: submit ``n_tasks`` copies, measure bytes/cycle.

    ``mode``: ``"copier"``, ``"erms"`` or ``"avx"`` (sync baselines).
    ``repetition``: fraction of tasks reusing the same buffer pair (the
    paper's 0 % / 75 % settings) — reuse warms TLB/caches for baselines
    and the ATCache for Copier.
    """
    copier = mode == "copier"
    kwargs = {}
    if copier and not atcache:
        kwargs = {"copier_kwargs": {}}
    system = System(n_cores=n_cores, copier=copier, phys_frames=262144)
    if copier and not atcache:
        system.copier.atcache.capacity = 0
    proc = system.create_process("tput")
    n_buffers = max(1, int(round(n_tasks * (1.0 - repetition))))
    pairs = []
    for _ in range(n_buffers):
        src = proc.mmap(task_bytes, populate=True, contiguous=True)
        dst = proc.mmap(task_bytes, populate=True, contiguous=True)
        pairs.append((src, dst))

    def gen():
        # Warm-up: one small copy to absorb one-time activation costs.
        if copier:
            w = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(w + 512, w, 256)
            yield from proc.client.csync(w + 512, 256)
        t0 = system.env.now
        for i in range(n_tasks):
            src, dst = pairs[i % n_buffers]
            warm = repetition > 0 and i >= n_buffers
            if copier:
                yield from proc.client.amemcpy(dst, src, task_bytes)
            else:
                yield from system.sync_copy(proc, proc.aspace, src,
                                            proc.aspace, dst, task_bytes,
                                            engine=mode, warm=warm)
        if copier:
            yield from proc.client.csync_all()
        return system.env.now - t0

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=DEFAULT_RUN_LIMIT)
    cycles = p.result
    return (n_tasks * task_bytes) / cycles if cycles else 0.0


def overload_burst(policy="always", load=1.0, n_tasks=160,
                   task_bytes=96 * 1024, deadline_slack=4.0,
                   use_deadlines=None, n_cores=2,
                   watchdog_cycles=20_000, starvation_cycles=250_000):
    """Open-loop burst driver for the overload benchmark.

    Submits ``n_tasks`` copies at a fixed interarrival equal to the
    engine's per-task service time divided by ``load`` — so ``load=2.0``
    offers twice what the service can drain, open-loop (arrivals do not
    wait for completions, the cloud-server overload model).  Each task
    writes its own destination buffer from one shared source, so tasks
    never carry dependencies and shedding is always legal: the curves
    compare pure queueing against pure shedding.

    With ``use_deadlines`` (defaulting to on for the deadline-feasible
    policy), every task carries ``submit + deadline_slack * service``
    cycles of budget.  Returns a dict of per-outcome latencies (cycles,
    submit→finish off the trace bus; shed tasks report their bounded
    synchronous latency), the overload counters and the full snapshot.
    """
    if use_deadlines is None:
        use_deadlines = policy == "deadline-feasible"
    system = System(n_cores=n_cores, phys_frames=131072, copier_kwargs={
        "use_dma": False, "use_absorption": False,
        "admission": policy, "watchdog_cycles": watchdog_cycles,
        "watchdog_starvation_cycles": starvation_cycles,
    })
    proc = system.create_process("burst", queue_capacity=4096)
    src = proc.mmap(task_bytes, populate=True, contiguous=True)
    dsts = [proc.mmap(task_bytes, populate=True, contiguous=True)
            for _ in range(n_tasks)]

    params = system.params
    service_cycles = int(task_bytes / params.avx_bytes_per_cycle)
    interarrival = max(1, int(service_cycles / load))
    budget = int(service_cycles * deadline_slack)

    submitted = {}
    done_latencies = []
    shed_latencies = []
    miss_latencies = []

    def collect(event):
        if event.kind == "task-submitted":
            submitted[event.task_id] = event.ts
        elif event.kind == "task-finished":
            t0 = submitted.pop(event.task_id, None)
            if t0 is None:
                return
            if event.outcome == "done":
                done_latencies.append(event.ts - t0)
            elif event.outcome == "deadline-miss":
                miss_latencies.append(event.ts - t0)
        elif event.kind == "task-shed":
            shed_latencies.append(event.sync_cycles)

    system.env.trace.subscribe(collect)

    def gen():
        for i in range(n_tasks):
            deadline = (system.env.now + budget) if use_deadlines else None
            try:
                yield from proc.client.amemcpy(dsts[i], src, task_bytes,
                                               deadline=deadline)
            except AdmissionReject:
                pass  # counted by the controller; the submitter moves on
            yield Timeout(interarrival)
        yield from proc.client.csync_all()

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=DEFAULT_RUN_LIMIT)
    system.env.trace.unsubscribe(collect)
    snap = system.copier.stats_snapshot()
    return {
        "policy": system.copier.admission.policy.name,
        "load": load,
        "interarrival": interarrival,
        "done_latencies": done_latencies,
        "shed_latencies": shed_latencies,
        "miss_latencies": miss_latencies,
        "overload": snap["overload"],
        "client": snap["clients"]["burst"],
        "snapshot": snap,
    }


def syscall_latency(op, mode, nbytes, n_ops=12, batch=None, n_cores=3):
    """Fig. 10 driver: average send()/recv() latency in cycles."""
    from repro.kernel.net import iouring_submit, recv_body, send_body

    copier = mode == "copier"
    system = System(n_cores=n_cores, copier=copier, phys_frames=262144)
    a, b = socket_pair(system)
    actor = system.create_process("actor")
    peer = system.create_process("peer")
    buf = actor.mmap(max(nbytes, 4096) * (batch or 1) + (1 << 16),
                     populate=True)
    peer_buf = peer.mmap(1 << 20, populate=True)
    total_msgs = n_ops * (batch or 1)

    if op == "send":
        def peer_gen():
            for _ in range(total_msgs):
                yield from recv(system, peer, b, peer_buf, 1 << 20)

        def actor_gen():
            if copier:
                yield from actor.client.amemcpy(buf + 256, buf, 256)
                yield from actor.client.csync(buf + 256, 256)
            t0 = system.env.now
            for _ in range(n_ops):
                if batch:
                    bodies = [send_body(system, actor, a, buf + i * nbytes,
                                        nbytes, mode=mode if copier else "sync")
                              for i in range(batch)]
                    yield from iouring_submit(system, actor, bodies)
                else:
                    yield from send(system, actor, a, buf, nbytes, mode=mode)
            return (system.env.now - t0) / total_msgs
    else:
        def peer_gen():
            # Flood: data is already queued when the actor recvs, so the
            # measurement is syscall execution, not wire waiting (the
            # paper's echo-generated load).
            src = peer.mmap(nbytes, populate=True)
            for _ in range(total_msgs):
                yield from send(system, peer, b, src, nbytes)

        def actor_gen():
            from repro.sim import Timeout, WaitEvent

            if copier:
                yield from actor.client.amemcpy(buf + 256, buf, 256)
                yield from actor.client.csync(buf + 256, 256)
            in_syscall = 0
            done_msgs = 0
            while done_msgs < total_msgs:
                while len(a.rx) < min(batch or 1, total_msgs - done_msgs):
                    yield WaitEvent(a.wait_data())
                    yield Timeout(100)
                t0 = system.env.now
                if batch:
                    n_now = min(batch, total_msgs - done_msgs)
                    bodies = [recv_body(system, actor, a, buf, 1 << 20,
                                        mode=mode if copier else "sync")
                              for _ in range(n_now)]
                    yield from iouring_submit(system, actor, bodies)
                    done_msgs += n_now
                else:
                    yield from recv(system, actor, a, buf, 1 << 20,
                                    mode=mode)
                    done_msgs += 1
                in_syscall += system.env.now - t0
                if copier:
                    # The app uses the data afterwards; not part of the
                    # syscall latency the figure reports.
                    yield from actor.client.csync(buf, nbytes)
            return in_syscall / total_msgs

    if op == "send":
        pp = peer.spawn(peer_gen(), affinity=1)
        ap = actor.spawn(actor_gen(), affinity=0)
    else:
        pp = peer.spawn(peer_gen(), affinity=1)
        ap = actor.spawn(actor_gen(), affinity=0)
    system.env.run_until(ap.terminated, limit=DEFAULT_RUN_LIMIT)
    return ap.result
