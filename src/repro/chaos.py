"""Chaos campaign: seeded kills and unmaps against live copy traffic.

The lifecycle teardown paths (exit reaping, deferred unmap + EFAULT
delivery, service drain) only earn trust under adversity, so this module
runs a miniature multi-process workload and injects faults *between* the
apps' operations:

* ``kill`` — ``OSProcess.kill()`` on a victim process with copies in
  flight: the copier must reap every task, unpin every page, and the
  address-space teardown must reclaim every frame.
* ``unmap`` — ``munmap`` of a live, possibly-pinned buffer while tasks
  referencing it are in flight: the unmap must defer until the last pin
  drops and the affected tasks must retire with an EFAULT, not crash.

Three app archetypes keep the traffic diverse (§6.2's app mix in
miniature): a KV-style slot shuffler (pure copy/csync), a stream app
pushing data through a loopback socket pair (skb alloc/free + k-mode
copies), and a churn app that mmaps/munmaps scratch buffers on every
iteration (organic deferred unmaps even without injected events).

Each app mirrors its operations into a pure-Python shadow model — the
no-chaos oracle.  Buffers touched by chaos (directly, or as the
destination of a copy whose source died mid-flight) are *tainted* and
excluded; every surviving untainted buffer must be byte-identical to the
oracle at the end.  The campaign finishes by exiting the survivors,
shutting the service down, and asserting that pins and physical frames
return exactly to the pre-workload baseline.

Events fire on a deterministic global *op tick* (not on sim time), so a
seed fully determines the campaign: same seed → same events, same
lifecycle counters, same surviving-buffer digests.

Node-level chaos (``node_kill`` / ``link_partition`` / ``link_slow``
against a multi-machine fleet) lives in :mod:`repro.fleet.chaos` and is
re-exported here as :func:`run_fleet_campaign` /
:func:`fleet_determinism_fingerprint` — same seeded-tick discipline,
applied to whole machines and interconnect links instead of processes
and buffers.
"""

import hashlib
import random

from repro.copier.errors import AdmissionReject, CopyAborted
from repro.fleet.chaos import (fleet_determinism_fingerprint,
                               run_fleet_campaign, run_restart_campaign)
from repro.kernel.net import recv, send, socket_pair
from repro.kernel.system import System
from repro.mem.faults import MemoryFault
from repro.sim import DEFAULT_RUN_LIMIT, Compute
from repro.sim.process import ProcessKilled

__all__ = ["run_campaign", "determinism_fingerprint",
           "run_fleet_campaign", "run_restart_campaign",
           "fleet_determinism_fingerprint"]

BUF_BYTES = 16 * 1024
CHUNK_MIN = 2048
CHUNK_MAX = 8192
APP_ERRORS = (CopyAborted, AdmissionReject, MemoryFault)


def _fill(tag, i):
    """Deterministic initial buffer contents."""
    buf = bytearray(BUF_BYTES)
    for j in range(0, BUF_BYTES, 64):
        buf[j] = (hash_byte(tag, i, j))
    return bytes(buf)


def hash_byte(tag, i, j):
    return (len(tag) * 17 + i * 41 + j // 64) % 251


class ChaosApp:
    """Base: buffer registry, taint tracking, shadow model.

    ``buffers`` maps name → va; ``model`` maps name → bytearray (the
    oracle); ``tainted`` names buffers chaos may have corrupted;
    ``unmapped`` names buffers that no longer have a mapping and must not
    be touched again.  ``inflight_srcs`` tracks, per destination, the
    sources of copies submitted since that destination's last successful
    csync — when a source dies mid-flight its pending destinations are
    tainted transitively.
    """

    kind = "app"

    def __init__(self, system, name, seed, n_ops):
        self.system = system
        self.name = name
        self.rng = random.Random(("chaos", self.kind, name, seed).__repr__())
        self.n_ops = n_ops
        self.proc = system.create_process(name)
        self.client = self.proc.client
        self.aspace = self.proc.aspace
        self.buffers = {}
        self.model = {}
        self.tainted = set()
        self.unmapped = set()
        self.inflight_srcs = {}
        self._fills = {}
        self.sockets = []
        self.killed = False
        self.finished = False
        self.ops_done = 0
        self.remaps = 0
        self.controller = None

    # ------------------------------------------------------------- buffers

    def add_buffer(self, bufname, tag):
        self._fills[bufname] = (tag, len(self.buffers))
        va = self.aspace.mmap(BUF_BYTES, populate=True, name=bufname)
        data = _fill(tag, self._fills[bufname][1])
        self.aspace.write(va, data)
        self.buffers[bufname] = va
        self.model[bufname] = bytearray(data)
        return va

    def recover_buffers(self):
        """Remap chaos-unmapped buffers and remap-in-place tainted ones.

        A robust app's reaction to losing a buffer: drop the old mapping
        (deferred around any pins still held by in-flight copies) and
        start over on a fresh one.  The bump-pointer allocator guarantees
        a fresh va, so stale aborted tasks on the old range can never
        decide a csync on the new one.
        """
        for bufname in sorted(set(self.unmapped) | set(self.tainted)):
            if bufname not in self.unmapped:
                self.aspace.munmap(self.buffers[bufname], BUF_BYTES)
            tag, idx = self._fills[bufname]
            va = self.aspace.mmap(BUF_BYTES, populate=True, name=bufname)
            data = _fill(tag, idx)
            self.aspace.write(va, data)
            self.buffers[bufname] = va
            self.model[bufname] = bytearray(data)
            self.unmapped.discard(bufname)
            self.tainted.discard(bufname)
            self.inflight_srcs.pop(bufname, None)
            for srcs in self.inflight_srcs.values():
                srcs.discard(bufname)
            self.remaps += 1

    def live(self, bufname):
        return bufname not in self.tainted and bufname not in self.unmapped

    def taint(self, bufname, why=""):
        """Taint ``bufname`` and (transitively) every destination with an
        un-csynced copy from it in flight."""
        work = [bufname]
        while work:
            cur = work.pop()
            if cur in self.tainted:
                continue
            self.tainted.add(cur)
            for dst, srcs in self.inflight_srcs.items():
                if cur in srcs and dst not in self.tainted:
                    work.append(dst)

    def note_copy(self, src, dst):
        self.inflight_srcs.setdefault(dst, set()).add(src)

    def note_csync_ok(self, dst):
        self.inflight_srcs.pop(dst, None)

    # --------------------------------------------------------------- chaos

    def on_chaos_unmap(self, bufname):
        """The controller unmapped ``bufname`` out from under us."""
        self.unmapped.add(bufname)
        self.taint(bufname, "chaos-unmap")

    def chaos_unmap_candidates(self):
        return sorted(b for b in self.buffers if b not in self.unmapped)

    def on_kill(self):
        self.killed = True
        for sock in self.sockets:
            sock.close()

    # ----------------------------------------------------------------- run

    def run(self):
        try:
            for _ in range(self.n_ops):
                self.recover_buffers()
                yield from self.step()
                self.ops_done += 1
                self.controller.tick(self)
            yield from self.final_sync()
            self.finished = True
        finally:
            for sock in self.sockets:
                sock.close()

    def step(self):
        raise NotImplementedError
        yield  # pragma: no cover

    def final_sync(self):
        """Full csync of every live buffer; taint the ones that fault."""
        for bufname in sorted(self.buffers):
            if not self.live(bufname):
                continue
            try:
                yield from self.client.csync(self.buffers[bufname], BUF_BYTES)
                self.note_csync_ok(bufname)
            except APP_ERRORS:
                self.taint(bufname, "final-csync")

    def csync_buffer(self, bufname, offset=0, length=BUF_BYTES):
        try:
            yield from self.client.csync(self.buffers[bufname] + offset,
                                         length)
            if offset == 0 and length == BUF_BYTES:
                # Only a full-buffer csync proves every pending copy into
                # this buffer has landed; a partial one must not clear the
                # taint-propagation bookkeeping for the rest of it.
                self.note_csync_ok(bufname)
        except APP_ERRORS:
            self.taint(bufname, "csync")

    # -------------------------------------------------------------- verify

    def surviving_digests(self):
        """name → sha1 of the simulated bytes, for live untainted buffers
        of a surviving app.  Must be called before the process exits."""
        out = {}
        if self.killed:
            return out
        for bufname, va in sorted(self.buffers.items()):
            if self.live(bufname):
                out[bufname] = hashlib.sha1(
                    self.aspace.read(va, BUF_BYTES)).hexdigest()
        return out

    def oracle_digests(self):
        out = {}
        if self.killed:
            return out
        for bufname in sorted(self.buffers):
            if self.live(bufname):
                out[bufname] = hashlib.sha1(
                    bytes(self.model[bufname])).hexdigest()
        return out


class KVApp(ChaosApp):
    """Slot shuffler: amemcpy between value slots, csync before reuse."""

    kind = "kv"
    N_SLOTS = 4

    def __init__(self, system, name, seed, n_ops):
        super().__init__(system, name, seed, n_ops)
        for i in range(self.N_SLOTS):
            self.add_buffer("slot%d" % i, "kv")

    def step(self):
        rng = self.rng
        src = "slot%d" % rng.randrange(self.N_SLOTS)
        dst = "slot%d" % rng.randrange(self.N_SLOTS)
        offset = rng.randrange(0, BUF_BYTES - CHUNK_MAX, 64)
        length = rng.randrange(CHUNK_MIN, CHUNK_MAX)
        do_sync = rng.random() < 0.4
        if src == dst or not (self.live(src) and self.live(dst)):
            return
        try:
            yield from self.client.amemcpy(self.buffers[dst] + offset,
                                           self.buffers[src] + offset,
                                           length)
        except APP_ERRORS:
            self.taint(dst, "amemcpy")
            return
        self.note_copy(src, dst)
        self.model[dst][offset:offset + length] = \
            self.model[src][offset:offset + length]
        if do_sync:
            yield from self.csync_buffer(dst, offset, length)


class StreamApp(ChaosApp):
    """Loopback stream: tx buffer → socket (k-mode copies through an skb)
    → rx buffer, csync before the data is trusted."""

    kind = "stream"

    def __init__(self, system, name, seed, n_ops):
        super().__init__(system, name, seed, n_ops)
        self.add_buffer("tx", "stream")
        self.add_buffer("rx", "stream")
        a, b = socket_pair(system, name)
        self.sockets = [a, b]

    def step(self):
        rng = self.rng
        offset = rng.randrange(0, BUF_BYTES - CHUNK_MAX, 64)
        length = rng.randrange(CHUNK_MIN, CHUNK_MAX)
        if not (self.live("tx") and self.live("rx")):
            return
        a, b = self.sockets
        try:
            yield from send(self.system, self.proc, a,
                            self.buffers["tx"] + offset, length,
                            mode="copier")
            yield from recv(self.system, self.proc, b,
                            self.buffers["rx"] + offset, length,
                            mode="copier")
        except APP_ERRORS:
            # The skb contents are unreliable; whatever recv landed is
            # suspect too.
            self.taint("rx", "stream-io")
            return
        self.note_copy("tx", "rx")
        self.model["rx"][offset:offset + length] = \
            self.model["tx"][offset:offset + length]
        yield from self.csync_buffer("rx", offset, length)


class ChurnApp(ChaosApp):
    """Address-space churn: every iteration mmaps a scratch buffer, copies
    through it, and munmaps — sometimes *before* the csync, which parks
    the scratch pages on the lazy-teardown list while the copy retires."""

    kind = "churn"

    def __init__(self, system, name, seed, n_ops):
        super().__init__(system, name, seed, n_ops)
        self.add_buffer("persist", "churn")

    def step(self):
        rng = self.rng
        offset = rng.randrange(0, BUF_BYTES - CHUNK_MAX, 64)
        offset2 = rng.randrange(0, BUF_BYTES - CHUNK_MAX, 64)
        length = rng.randrange(CHUNK_MIN, CHUNK_MAX)
        early_unmap = rng.random() < 0.3
        if not self.live("persist"):
            return
        scratch = self.aspace.mmap(CHUNK_MAX, populate=True, name="scratch")
        try:
            yield from self.client.amemcpy(
                scratch, self.buffers["persist"] + offset, length)
            yield from self.client.csync(scratch, length)
            yield from self.client.amemcpy(
                self.buffers["persist"] + offset2, scratch, length)
            if not early_unmap:
                yield from self.csync_buffer("persist", offset2, length)
        except APP_ERRORS:
            self.taint("persist", "churn")
            self.aspace.munmap(scratch, CHUNK_MAX)
            return
        # Unmapping the scratch buffer with the scratch→persist copy
        # possibly still in flight: pins defer the teardown, and if the
        # copy does fault it surfaces at the next csync of "persist".
        self.aspace.munmap(scratch, CHUNK_MAX)
        if early_unmap and self.live("persist"):
            yield from self.csync_buffer("persist", offset2, length)
        self.model["persist"][offset2:offset2 + length] = \
            bytes(self.model["persist"][offset:offset + length])
        yield Compute(200, tag="app")


class ChaosController:
    """Fires seeded kill/unmap events on a deterministic global op tick."""

    def __init__(self, system, apps, seed, n_events, max_kills):
        self.system = system
        self.apps = apps
        self.rng = random.Random(("chaos-controller", seed).__repr__())
        self.events = []  # log of (tick, kind, target) actually fired
        self.kills = 0
        self.max_kills = max_kills
        self.global_tick = 0
        # Keep the event window well inside the tick budget even after
        # max_kills apps stop contributing ticks.
        total_ticks = sum(app.n_ops for app in apps)
        if apps:
            survivors = max(len(apps) - max_kills, 1)
            total_ticks = min(total_ticks,
                              survivors * max(app.n_ops for app in apps))
        window = max(n_events + 10, int(total_ticks * 0.55))
        ticks = self.rng.sample(range(5, 5 + window), n_events)
        self.schedule = sorted(ticks)

    def tick(self, current_app):
        self.global_tick += 1
        while self.schedule and self.schedule[0] <= self.global_tick:
            self.schedule.pop(0)
            self._fire(current_app)

    def _fire(self, current_app):
        rng = self.rng
        want_kill = rng.random() < 0.3 and self.kills < self.max_kills
        if want_kill:
            victims = [a for a in self.apps
                       if not a.killed and not a.finished
                       and a is not current_app]
            if victims:
                victim = rng.choice(victims)
                victim.on_kill()
                self.system.kill_process(victim.proc)
                self.kills += 1
                self.events.append((self.global_tick, "kill", victim.name))
                return
        targets = [(a, b) for a in self.apps
                   if not a.killed and not a.finished
                   for b in a.chaos_unmap_candidates()]
        if not targets:
            self.events.append((self.global_tick, "noop", "-"))
            return
        app, bufname = rng.choice(targets)
        app.aspace.munmap(app.buffers[bufname], BUF_BYTES)
        app.on_chaos_unmap(bufname)
        self.events.append((self.global_tick, "unmap",
                            "%s/%s" % (app.name, bufname)))


def run_campaign(seed=0, n_events=60, n_ops=60, drain_deadline=50_000_000,
                 fault_plan=None):
    """Run one chaos campaign; returns a result dict.

    The result carries the event log, per-app outcomes, surviving-buffer
    digest comparison against the shadow oracle, the post-shutdown leak
    checks, and the service's lifecycle counters — everything a caller
    needs to assert correctness or determinism.
    """
    system = System(n_cores=4, phys_frames=16384,
                    copier_kwargs={"fault_plan": fault_plan})
    baseline_frames = system.phys.frames_in_use
    apps = []
    for i in range(2):
        apps.append(KVApp(system, "kv%d" % i, seed, n_ops))
        apps.append(StreamApp(system, "stream%d" % i, seed, n_ops))
        apps.append(ChurnApp(system, "churn%d" % i, seed, n_ops))
    controller = ChaosController(system, apps, seed, n_events,
                                 max_kills=max(len(apps) // 3, 1))
    for i, app in enumerate(apps):
        app.controller = controller
        app.proc.spawn(app.run(), affinity=i % 3)
    for app in apps:
        try:
            system.env.run_until(app.proc.sim_proc.terminated,
                                 limit=DEFAULT_RUN_LIMIT)
        except ProcessKilled:
            pass  # a chaos kill: the teardown already ran via OSProcess.kill

    failures = []
    mismatches = []
    verified = 0
    for app in apps:
        got = app.surviving_digests()
        want = app.oracle_digests()
        for bufname in want:
            if got.get(bufname) != want[bufname]:
                mismatches.append("%s/%s" % (app.name, bufname))
            else:
                verified += 1
    if mismatches:
        failures.append("buffers diverged from the oracle: %s"
                        % ", ".join(mismatches))

    survivors = [app for app in apps if not app.killed]
    for app in survivors:
        system.exit_process(app.proc)
    report = system.copier.shutdown(deadline=drain_deadline)
    if not report["drained"]:
        failures.append("shutdown failed to drain (force_reaped=%d)"
                        % report["force_reaped"])

    leaked = system.leaked_pins()
    if leaked:
        failures.append("%d page pins leaked" % leaked)
    frames_now = system.phys.frames_in_use
    if frames_now != baseline_frames:
        failures.append("frame leak: %d in use vs baseline %d"
                        % (frames_now, baseline_frames))

    snap = system.copier.stats_snapshot()
    fired = [e for e in controller.events if e[1] != "noop"]
    return {
        "seed": seed,
        "events": controller.events,
        "events_fired": len(fired),
        "kills": controller.kills,
        "unmaps": sum(1 for e in fired if e[1] == "unmap"),
        "apps": {app.name: {"killed": app.killed,
                            "finished": app.finished,
                            "ops_done": app.ops_done,
                            "remaps": app.remaps,
                            "tainted": sorted(app.tainted)}
                 for app in apps},
        "verified_buffers": verified,
        "mismatches": mismatches,
        "shutdown": report,
        "lifecycle": snap["lifecycle"],
        "baseline_frames": baseline_frames,
        "frames_now": frames_now,
        "leaked_pins": leaked,
        "failures": failures,
    }


def determinism_fingerprint(result):
    """The parts of a campaign result that must be identical run-to-run
    for the same seed."""
    return {
        "events": result["events"],
        "lifecycle": result["lifecycle"],
        "apps": result["apps"],
        "verified_buffers": result["verified_buffers"],
    }
