"""Cache-pollution model for the microarchitectural study (§6.3.5).

A large synchronous copy running on the application's core streams data
through its top-level caches and evicts the app's hot working set; the next
stretch of application compute then runs at an inflated CPI.  Offloading
the copy to Copier's dedicated core avoids the eviction, which is the
mechanism behind the paper's 4-16 % CPI reduction for copy-irrelevant code.

The model keeps one pollution level in [0, 1] per key (typically a process
or core).  Copies raise it proportionally to bytes streamed; compute decays
it as the working set is re-fetched.
"""


class CacheModel:
    def __init__(self, params):
        self.params = params
        self._pollution = {}

    def pollute(self, key, nbytes):
        """Record ``nbytes`` of copy traffic streaming through ``key``'s cache."""
        level = self._pollution.get(key, 0.0)
        level = min(1.0, level + nbytes / self.params.l1l2_bytes)
        self._pollution[key] = level

    def pollution(self, key):
        return self._pollution.get(key, 0.0)

    def cpi_factor(self, key):
        """Multiplier (≥1) applied to compute cycles at ``key``."""
        return 1.0 + self.params.pollution_cpi_penalty * self._pollution.get(key, 0.0)

    def charge(self, key, base_cycles):
        """Inflate ``base_cycles`` by the current pollution and decay it.

        Returns the inflated cycle count; the caller issues the Compute.
        The decay models the working set being re-warmed as the app runs
        (one ``pollution_decay_bytes`` worth of compute clears the cache).
        """
        factor = self.cpi_factor(key)
        inflated = int(base_cycles * factor)
        level = self._pollution.get(key, 0.0)
        if level > 0.0:
            decay = base_cycles / self.params.pollution_decay_bytes
            self._pollution[key] = max(0.0, level - decay)
        return inflated

    def reset(self, key=None):
        if key is None:
            self._pollution.clear()
        else:
            self._pollution.pop(key, None)
