"""On-chip DMA engine (I/OAT-style) as a simulated device.

The device drains batches of physically-contiguous subtasks serially at
``dma_bytes_per_cycle`` without occupying any CPU core — the property the
piggyback dispatcher (§4.3) exploits by overlapping DMA transfers with AVX
copies on the Copier core.
"""

from collections import deque

from repro.faultinject import DMAAbortError, DMASubmitError
from repro.mem.addrspace import copy_range
from repro.mem.faults import MemoryFault
from repro.sim import Timeout, WaitEvent


class DMASubtask:
    """One physically-contiguous copy unit handed to the device."""

    __slots__ = ("src_as", "src_va", "dst_as", "dst_va", "nbytes", "on_done")

    def __init__(self, src_as, src_va, dst_as, dst_va, nbytes, on_done=None):
        self.src_as = src_as
        self.src_va = src_va
        self.dst_as = dst_as
        self.dst_va = dst_va
        self.nbytes = nbytes
        self.on_done = on_done

    def __repr__(self):
        return "DMASubtask(%d bytes)" % self.nbytes


def is_contiguous(aspace, va, nbytes, write=False):
    """True if [va, va+nbytes) maps to physically adjacent frames."""
    return len(aspace.translate_run(va, nbytes, write=write)) <= 1


class DMAEngine:
    """The device: a background process serially executing submitted batches."""

    def __init__(self, env, params, check_contiguity=True, injector=None):
        self.env = env
        self.params = params
        self.check_contiguity = check_contiguity
        self.injector = injector
        self._queue = deque()
        self._wake = env.event()
        self.busy_cycles = 0
        self.bytes_copied = 0
        self.batches = 0
        self.submit_failures = 0
        self.aborted_batches = 0
        self.stall_cycles = 0
        self.efaults = 0
        self.bitflips = 0
        self._proc = env.spawn(self._run(), name="dma-engine")

    def submit(self, subtasks):
        """Queue a batch; returns an event that triggers when it finishes.

        The *caller* pays ``dma_submit_cycles`` per batch (charged by the
        dispatcher, not here) — this method is the device-side doorbell.
        On success the completion event delivers ``None``; when the device
        aborts the batch mid-transfer it delivers a :class:`DMAAbortError`,
        which the simulator *throws* into the waiting process (a completion
        interrupt with error status).  Raises :class:`DMASubmitError` when
        the doorbell itself is lost (fault injection) — nothing was queued.
        """
        inj = self.injector
        if inj is not None and inj.fire("dma_submit_fail"):
            self.submit_failures += 1
            raise DMASubmitError("DMA doorbell lost")
        done = self.env.event()
        self._queue.append((list(subtasks), done))
        self.batches += 1
        if not self._wake.triggered:
            self._wake.succeed()
        return done

    @property
    def pending_batches(self):
        return len(self._queue)

    def restart(self):
        """Respawn the device process after a checkpoint quiesce killed it.

        Only legal with an empty submission queue (the quiesce drained all
        in-flight batches); counters survive untouched so a restored
        machine keeps the device's history.
        """
        if self._queue:
            raise RuntimeError("DMA restart with %d batches queued"
                               % len(self._queue))
        self._wake = self.env.event()
        self._proc = self.env.spawn(self._run(), name="dma-engine")

    def _run(self):
        while True:
            if not self._queue:
                self._wake = self.env.event()
                yield WaitEvent(self._wake)
                continue
            batch, done = self._queue.popleft()
            inj = self.injector
            error = None
            for sub in batch:
                try:
                    if self.check_contiguity and sub.nbytes > 0:
                        if not is_contiguous(sub.src_as, sub.src_va, sub.nbytes):
                            raise RuntimeError("DMA source not physically contiguous")
                        if not is_contiguous(sub.dst_as, sub.dst_va, sub.nbytes, write=True):
                            raise RuntimeError("DMA destination not physically contiguous")
                except MemoryFault as exc:
                    # The mapping vanished while the batch sat in the device
                    # queue (munmap or process exit racing the transfer).
                    # Real engines complete the descriptor with a page-fault
                    # status instead of wedging; surface it as an abort so
                    # the copier's fallback path re-runs (and EFAULTs) the
                    # affected segments — and keep serving the queue.
                    self.efaults += 1
                    if error is None:
                        error = DMAAbortError("EFAULT mid-batch: %s" % exc)
                    break
                if inj is not None:
                    stall = inj.stall_cycles("engine_stall")
                    if stall:
                        self.stall_cycles += stall
                        yield Timeout(stall)
                cycles = self.params.dma_transfer_cycles(sub.nbytes)
                if inj is not None and inj.fire("dma_abort"):
                    # Mid-transfer abort: the device burned part of the
                    # transfer time but commits nothing for this subtask
                    # (or the rest of the batch) — the copier re-runs the
                    # unfinished segments on a CPU engine.
                    yield Timeout(cycles // 2)
                    self.busy_cycles += cycles // 2
                    self.aborted_batches += 1
                    error = DMAAbortError(
                        "batch aborted mid-transfer (%d B subtask)" % sub.nbytes)
                    break
                yield Timeout(cycles)
                self.busy_cycles += cycles
                try:
                    copy_range(sub.src_as, sub.src_va, sub.dst_as, sub.dst_va,
                               sub.nbytes)
                except MemoryFault as exc:
                    self.efaults += 1
                    if error is None:
                        error = DMAAbortError("EFAULT mid-batch: %s" % exc)
                    break
                self.bytes_copied += sub.nbytes
                if (inj is not None and sub.nbytes > 0
                        and inj.fire("dma_bitflip")):
                    # Silent corruption: the device reports success but
                    # one destination bit is wrong.  Nothing here tells
                    # the copier — only the opt-in end-to-end CRC at
                    # retirement can catch it.
                    off = inj.draw_int("dma_bitflip", sub.nbytes)
                    bit = inj.draw_int("dma_bitflip", 8)
                    byte = sub.dst_as.read(sub.dst_va + off, 1)[0]
                    sub.dst_as.write(sub.dst_va + off,
                                     bytes([byte ^ (1 << bit)]))
                    self.bitflips += 1
                if sub.on_done is not None:
                    sub.on_done(sub)
            done.succeed(error)
