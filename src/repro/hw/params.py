"""Machine calibration constants.

All times are CPU cycles at a notional 2.9 GHz (the paper's Xeon E5-2650 v4
runs at a constant 2.9 GHz, §6).  Constants either come straight from the
paper or are calibrated so the paper's micro-benchmark shapes reproduce:

* §4.3: virtual-to-physical translation costs "~240 cycles/page".
* §4.3: DMA submit overhead "sufficient to copy 1.4KB using AVX2"
  → ``dma_submit_cycles ≈ 1434 / avx_bytes_per_cycle``.
* Fig. 7-a: DMA has lower throughput than AVX2, "excels at large copies
  (≥4KB)"; hybrid subtasks only consider ≥4 KB pieces DMA candidates.
* Fig. 9: parallel AVX+DMA peaks at +158 % over ERMS and +38 % over AVX2
  → engine steady-state rates chosen as ERMS 8.5 B/cyc, AVX2 16 B/cyc,
  DMA 10.5 B/cyc (26.5 B/cyc combined ideal, eroded by submit/poll
  overheads and by small tasks that never qualify for DMA candidacy).
* §2.2 / §4.3: the kernel avoids SIMD because saving/restoring the register
  state (several KB) is expensive — modeled as ``simd_state_cycles`` paid
  per kernel-mode SIMD use, but only once per *activation* by Copier.
* §4.6: break-even sizes (kernel ≥0.3 KB, user ≥0.5 KB with windows;
  ≥2 KB / ≥12 KB without) emerge from submit + csync costs below.
"""

from dataclasses import dataclass


@dataclass
class MachineParams:
    # Copy engine steady-state rates, bytes per cycle.
    erms_bytes_per_cycle: float = 8.5
    avx_bytes_per_cycle: float = 16.0
    dma_bytes_per_cycle: float = 10.5

    # Per-invocation fixed costs.
    erms_startup_cycles: int = 40
    avx_setup_cycles: int = 20
    simd_state_cycles: int = 2000  # save+restore of several-KB SIMD state
    dma_submit_cycles: int = 70    # ≈ AVX2 time for 1.4 KB (§4.3)
    dma_complete_check_cycles: int = 35

    # Address translation (§4.3).
    page_translate_cycles: int = 240
    atcache_hit_cycles: int = 12
    atcache_capacity: int = 4096

    # Privilege crossings and scheduling.
    syscall_trap_cycles: int = 350
    syscall_return_cycles: int = 350
    context_switch_cycles: int = 2000
    interrupt_cycles: int = 800

    # Page-fault machinery (CoW experiment, §6.1.2).
    fault_entry_cycles: int = 600
    fault_exit_cycles: int = 350
    page_alloc_cycles: int = 250

    # Copier task plumbing (queue ops are shared-memory, no syscalls, §4.1).
    queue_submit_cycles: int = 60
    queue_poll_cycles: int = 80       # one empty polling sweep
    csync_check_cycles: int = 30      # descriptor bitmap check
    csync_spin_cycles: int = 25       # one spin-wait iteration
    descriptor_alloc_cycles: int = 25  # pooled allocation (§5.1.1)
    handler_dispatch_cycles: int = 55

    # Break-even fallbacks (§4.6): below these sizes the sync path wins,
    # so ported code falls back to plain copies.  Measured on *this*
    # substrate the same way the paper measured theirs (0.3 KB kernel /
    # 0.5 KB user on their Xeon).
    copier_kernel_min_bytes: int = 384
    copier_user_min_bytes: int = 2048

    # Dispatcher policy (§4.3).
    dma_candidate_min_bytes: int = 4096
    i_piggyback_threshold: int = 12 * 1024
    default_segment_bytes: int = 1024

    # Copier service (§4.5).
    copy_slice_bytes: int = 64 * 1024
    low_load: float = 0.2
    high_load: float = 0.85

    # Cache model (§6.3.5).
    llc_bytes: int = 30 * 1024 * 1024   # 30 MB LLC on E5-2650 v4
    l1l2_bytes: int = 256 * 1024
    pollution_cpi_penalty: float = 0.18  # max CPI inflation from a huge copy
    pollution_decay_bytes: int = 512 * 1024

    # Network stack (send/recv experiments, §6.1.2).
    wire_latency_cycles: int = 3000      # ~1 µs loopback/LAN hop
    wire_bytes_per_cycle: float = 1.7    # ~40 Gbps at 2.9 GHz
    proto_cycles: int = 500              # TCP/IP metadata work (checksum offloaded)
    skb_alloc_cycles: int = 200
    sock_wake_cycles: int = 400
    sock_state_cycles: int = 250         # socket bookkeeping after copy

    # Zero-copy socket model (MSG_ZEROCOPY, §2.2/§6.1.2).
    zc_pin_cycles_per_page: int = 300
    zc_tlb_flush_cycles: int = 2000
    zc_completion_check_cycles: int = 700  # extra syscall to reclaim buffers

    # Userspace Bypass model (UB, §6.1.2).
    ub_trap_cycles: int = 120
    ub_slowdown_factor: float = 1.18     # instrumented memory access

    # zIO model (§2.2/§6.2).
    zio_threshold_bytes: int = 4096      # evaluation setting (§6)
    zio_track_cycles: int = 150          # record an indirection (metadata)
    zio_remap_cycles_per_page: int = 120
    zio_tlb_flush_cycles: int = 1800
    zio_fault_cycles: int = 1400         # on-demand copy fault entry/exit

    # Binder IPC (§5.2/§6.1.2).
    binder_txn_cycles: int = 1200        # driver bookkeeping per transaction
    parcel_read_cycles: int = 180        # typed read of one entry

    # Phone profile knobs (HarmonyOS practice, §5.3).
    scenario_wake_cycles: int = 1500

    def cpu_copy_cycles(self, nbytes, engine="avx", warm=False):
        """Cycles for a synchronous CPU copy of ``nbytes``.

        ``warm=True`` models repeated buffers (warm TLB/caches): fixed costs
        shrink and the effective rate improves ~15 %, which is why Fig. 9's
        75 %-repetition baselines close part of the gap to Copier.
        """
        if engine == "avx":
            rate = self.avx_bytes_per_cycle
            setup = self.avx_setup_cycles
        elif engine == "erms":
            rate = self.erms_bytes_per_cycle
            setup = self.erms_startup_cycles
        else:
            raise ValueError("unknown CPU engine %r" % engine)
        if warm:
            rate *= 1.15
            setup //= 2
        return int(setup + nbytes / rate)

    def dma_transfer_cycles(self, nbytes):
        """Device-side transfer time (no CPU occupancy)."""
        return int(nbytes / self.dma_bytes_per_cycle)


#: Server profile used by all Linux experiments (§6 setup).
SERVER = MachineParams()


def phone_params():
    """Kirin 9000S-flavored profile for the HarmonyOS experiments (§6.2.4).

    Phones have no I/OAT-class DMA for general memcpy and narrower SIMD,
    so rates drop and the energy-relevant wake cost rises.
    """
    return MachineParams(
        erms_bytes_per_cycle=6.0,
        avx_bytes_per_cycle=10.0,   # NEON-class
        dma_bytes_per_cycle=5.0,
        simd_state_cycles=1200,
        syscall_trap_cycles=450,
        syscall_return_cycles=450,
        llc_bytes=8 * 1024 * 1024,
        scenario_wake_cycles=3000,
    )
