"""Hardware models: copy engines, DMA device, caches.

Replaces the paper's Xeon E5-2650 v4 (AVX2 + ERMS) and Intel I/OAT DMA with
calibrated analytic timing models (see ``params.py`` for the calibration
rationale).  Engines move *real* bytes through :mod:`repro.mem`, so the
models determine *when* data lands, never *what* lands.
"""

from repro.hw.params import MachineParams
from repro.hw.engines import CopyTimingModel, cpu_copy
from repro.hw.dma import DMAEngine
from repro.hw.cache import CacheModel

__all__ = [
    "MachineParams",
    "CopyTimingModel",
    "cpu_copy",
    "DMAEngine",
    "CacheModel",
]
