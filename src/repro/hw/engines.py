"""CPU copy engines (ERMS / AVX2) as timed simulator activities."""

from repro.mem.addrspace import copy_range
from repro.sim import Compute, Timeout


def cpu_copy(params, src_as, src_va, dst_as, dst_va, nbytes,
             engine="avx", warm=False, tag="copy", injector=None):
    """Generator performing a synchronous CPU copy.

    Charges the caller's core for the engine's cycles, then moves the bytes
    (data is captured at completion time — racing writers during a sync
    memcpy are undefined behaviour, same as the real thing).  ``engine`` is
    ``"avx"`` for user-mode glibc-style copies or ``"erms"`` for kernel-mode
    copies (the kernel cannot afford SIMD state saves, §2.2).

    ``injector`` is an optional :class:`repro.faultinject.FaultInjector`;
    an armed ``engine_stall`` fault lengthens the copy (frequency
    throttling / SMI preemption) without affecting its outcome.
    """
    if nbytes:
        if injector is not None:
            stall = injector.stall_cycles("engine_stall")
            if stall:
                yield Timeout(stall)
        yield Compute(params.cpu_copy_cycles(nbytes, engine=engine, warm=warm), tag=tag)
        copy_range(src_as, src_va, dst_as, dst_va, nbytes)
    return nbytes


class CopyTimingModel:
    """Analytic throughput queries used by the Fig. 7-a engine sweep."""

    def __init__(self, params):
        self.params = params

    def cpu_throughput(self, nbytes, engine="avx", warm=False):
        """Sustained bytes/cycle for a copy of ``nbytes`` (incl. fixed costs)."""
        cycles = self.params.cpu_copy_cycles(nbytes, engine=engine, warm=warm)
        return nbytes / cycles if cycles else 0.0

    def dma_throughput(self, nbytes, pages_to_translate=0, atcache_hit_rate=0.0):
        """Bytes/cycle for a standalone DMA copy.

        Includes the submit/completion overheads that make DMA lose to AVX2
        below ~4 KB (Fig. 7-a).  The raw engine sweep uses pinned contiguous
        buffers (``pages_to_translate=0``); pass a page count to model the
        service path where user VAs must be walked (240 cyc/page, §4.3) and
        ATCache hits shortcut the walk.
        """
        p = self.params
        translate = pages_to_translate * (
            atcache_hit_rate * p.atcache_hit_cycles
            + (1.0 - atcache_hit_rate) * p.page_translate_cycles
        )
        cycles = (
            p.dma_submit_cycles
            + p.dma_complete_check_cycles
            + translate
            + p.dma_transfer_cycles(nbytes)
        )
        return nbytes / cycles if cycles else 0.0

    def crossover_size(self, lo=64, hi=1 << 20):
        """Smallest power-of-two size where DMA beats ERMS (≈4 KB in paper)."""
        size = lo
        while size <= hi:
            if self.dma_throughput(size) >= self.cpu_throughput(size, engine="erms"):
                return size
            size *= 2
        return None
