"""Pacing policies: how the async driver maps wall time to sim time.

The simulator's clock is purely virtual (:mod:`repro.sim.engine`); a
:class:`~repro.serve.driver.SimDriver` owns the only mapping between the
two time domains, and these policy objects configure it:

* ``free`` — **free-running**: step the simulator as fast as the host
  allows whenever events are pending; never burn virtual time while
  idle.  Maximum throughput, no determinism guarantee: the sim-time
  point at which a socket-driven submission lands depends on wall-clock
  arrival order.

* ``ratio`` — **wall-clock-ratio**: tie the virtual clock to the wall
  clock at ``cycles_per_second`` simulated cycles per real second
  (default one simulated 2.9 GHz core in real time; scale it down to
  watch a scenario in slow motion, up for fast-forward).  The driver
  stops stepping when the sim runs ahead of the wall target and sleeps
  the shortfall.

* ``gate`` — **deterministic lockstep gate**: submissions from
  registered sessions are *staged*, not injected; the simulator only
  advances when every live session is parked on a staged operation, and
  each round injects the staged batch in sorted ``(session, seq)``
  order, then steps until the batch retires.  Wall-clock arrival order
  becomes irrelevant, so simulated counters are run-to-run
  deterministic for closed-loop workloads — the property the
  fixed-seed socket benchmarks are gated on.  Requires every session's
  operation sequence to be deterministic, and external input (socket
  reads) to be producible without sim progress (true for closed-loop
  clients).

Select with the ``pacing=`` argument or the ``COPIER_PACING``
environment variable (``free`` / ``ratio`` / ``ratio:<cycles_per_s>`` /
``gate``).
"""

import os

#: One simulated 2.9 GHz core advancing in real time (the calibration
#: frequency used throughout the benchmarks).
DEFAULT_CYCLES_PER_SECOND = 2.9e9


class PacingSpecError(ValueError):
    """A pacing spec string failed to parse.

    Raised with the offending spec for unknown policy names, malformed
    or non-positive ``ratio:<cycles_per_s>`` arguments.  Subclasses
    ``ValueError`` so pre-existing callers keep working.
    """

    def __init__(self, spec, reason):
        super().__init__("bad pacing spec %r: %s" % (spec, reason))
        self.spec = spec
        self.reason = reason


class PacingPolicy:
    """Base: shared knobs for the driver's stepping loop."""

    name = "base"
    #: Deterministic policies stage session submissions and advance the
    #: sim only at gate points; non-deterministic ones inject eagerly.
    deterministic = False

    def __repr__(self):
        return "<%s pacing>" % self.name


class FreeRunning(PacingPolicy):
    """Step whenever events are pending, as fast as the host allows."""

    name = "free"


class WallClockRatio(PacingPolicy):
    """Pace the virtual clock against the wall clock.

    ``cycles_per_second`` is the target virtual-cycle rate.  The driver
    advances the sim toward ``start + elapsed_wall * rate`` and sleeps
    when ahead; an idle simulation still advances (virtual time passes
    at the configured rate, firing timers), which is what makes this
    mode behave like a real-time machine rather than a batch solver.
    """

    name = "ratio"

    def __init__(self, cycles_per_second=DEFAULT_CYCLES_PER_SECOND):
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        self.cycles_per_second = float(cycles_per_second)


class LockstepGate(PacingPolicy):
    """Deterministic lockstep gate (see module docstring)."""

    name = "gate"
    deterministic = True


def make_pacing(spec=None):
    """Build a pacing policy from a spec string or pass one through.

    ``None`` consults ``COPIER_PACING`` and falls back to ``free``.
    """
    if isinstance(spec, PacingPolicy):
        return spec
    if spec is None:
        spec = os.environ.get("COPIER_PACING") or "free"
    name, _, arg = spec.partition(":")
    if name == "free":
        return FreeRunning()
    if name == "gate":
        return LockstepGate()
    if name == "ratio":
        if arg:
            try:
                rate = float(arg)
            except ValueError:
                raise PacingSpecError(
                    spec, "ratio argument %r is not a number" % arg) from None
            if rate <= 0:
                raise PacingSpecError(
                    spec, "cycles_per_second must be positive, got %g" % rate)
            return WallClockRatio(cycles_per_second=rate)
        return WallClockRatio()
    raise PacingSpecError(spec, "unknown policy %r (free/ratio/gate)" % name)
