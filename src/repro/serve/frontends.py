"""Socket-served application frontends: real connections, simulated copies.

Each frontend accepts real localhost TCP connections via
``asyncio.start_server`` and services requests by driving copy-offloaded
work *into the simulator* through an
:class:`~repro.serve.facade.AsyncCopier`: a SET lands its payload in the
connection's simulated input buffer, ``await amemcpy`` moves it into the
store, ``await csync`` publishes it; a GET copies the stored value into
the connection's output buffer and ships the bytes back over the socket.
The wire payloads are real — a byte set over TCP round-trips through
simulated Copier tasks and comes back over TCP.

Determinism (for the ``gate`` pacing policy) is engineered in three
places:

* session keys come from a client-sent hello ID, never accept order;
* every per-connection sim buffer (in/out/store) is preallocated by
  hello ID at server construction, so VAs are run-stable;
* value allocation state is per-connection (or keyed, for the
  memcached-style store), so no shared cursor observes arrival order.

Wire protocol (both frontends): the client first sends a 4-byte LE
hello ID ``cid`` in ``[0, max_conns)``.  Redis-like requests reuse the
:mod:`repro.apps.common` framing (64-byte header + 16-byte key, SETs
followed by the value); replies are ``status(1) + value_len(8 LE) +
value``.  Memcached-like requests are ``len(4 LE)`` + the
:mod:`repro.apps.memcachedapp` op encoding; replies are ``len(4 LE) +
payload``.
"""

import asyncio

from repro.api import LibCopier
from repro.apps.common import HEADER_LEN, KEY_LEN, decode_header
from repro.apps.memcachedapp import OP_MGET, OP_SET
from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.serve.facade import AsyncCopier

REQ_META = HEADER_LEN + KEY_LEN
HELLO_LEN = 4
LEN_BYTES = 8

STATUS_OK = b"+"
STATUS_MISS = b"-"
STATUS_ERR = b"!"

#: Errors a copy-offloaded request maps to an error reply (the request
#: fails; the connection and the server survive).
_REQUEST_ERRORS = (CopyAborted, DeadlineMissed, AdmissionReject)


def encode_hello(cid):
    """The connection preamble: a run-stable client id."""
    return int(cid).to_bytes(HELLO_LEN, "little")


class _SocketFrontend:
    """Accept loop + hello/session plumbing shared by both frontends."""

    def __init__(self, system, driver, max_conns, name):
        self.system = system
        self.driver = driver
        self.max_conns = max_conns
        self.name = name
        self.requests_served = 0
        self.timeouts = 0
        self.rejected_conns = 0
        self._server = None
        self.port = None

    async def start(self, host="127.0.0.1", port=0):
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle, host, port, backlog=max(128, self.max_conns))
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer):
        try:
            hello = await reader.readexactly(HELLO_LEN)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        cid = int.from_bytes(hello, "little")
        if cid >= self.max_conns or ("conn", cid) in self.driver._sessions:
            self.rejected_conns += 1
            writer.close()
            return
        session = self.driver.session(("conn", cid))
        try:
            await self._serve(session, cid, reader, writer)
        finally:
            session.close()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve(self, session, cid, reader, writer):
        raise NotImplementedError


class RedisSocketServer(_SocketFrontend):
    """The Redis-like KV store behind a real TCP listener.

    SETs: payload → per-connection sim input buffer → ``amemcpy`` into
    the connection's store arena → ``csync`` → visible in ``db``.  GETs:
    ``amemcpy`` store → per-connection output buffer → ``csync`` → bytes
    shipped back over the socket.  ``timeout_cycles`` bounds each copy
    (deadline-missed requests get an error reply, mirroring
    :class:`repro.apps.rediskv.RedisServer`'s drop-on-miss behaviour).
    """

    def __init__(self, system, driver, max_conns=16, conn_buf_bytes=64 * 1024,
                 store_bytes=256 * 1024, name="redis-sock",
                 timeout_cycles=None):
        super().__init__(system, driver, max_conns, name)
        self.conn_buf_bytes = conn_buf_bytes
        self.store_bytes = store_bytes
        self.timeout_cycles = timeout_cycles
        self.proc = system.create_process(
            name, queue_capacity=max(1024, 2 * max_conns))
        self.copier = AsyncCopier(driver, self.proc.client)
        # Deterministic VA layout: every connection's buffers exist
        # before the first accept, addressed by hello id.
        proc = self.proc
        self._io = [(proc.mmap(conn_buf_bytes, populate=True,
                               name="%s-in-%d" % (name, cid)),
                     proc.mmap(conn_buf_bytes, populate=True,
                               name="%s-out-%d" % (name, cid)))
                    for cid in range(max_conns)]
        self._stores = [proc.mmap(store_bytes, name="%s-store-%d" % (name, cid))
                        for cid in range(max_conns)]
        self._cursors = [0] * max_conns
        self.db = {}  # key -> (va, length)

    def _alloc_value(self, cid, length):
        aligned = (length + 4095) & ~4095
        if aligned > self.store_bytes:
            raise ValueError("value of %d bytes exceeds the per-connection "
                             "store (%d)" % (length, self.store_bytes))
        if self._cursors[cid] + aligned > self.store_bytes:
            self._cursors[cid] = 0  # recycle (benchmarks overwrite keys)
        va = self._stores[cid] + self._cursors[cid]
        self._cursors[cid] += aligned
        return va

    async def _serve(self, session, cid, reader, writer):
        proc, copier = self.proc, self.copier
        in_va, out_va = self._io[cid]
        while True:
            try:
                meta = await session.external(reader.readexactly(REQ_META))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            op, key, value_len = decode_header(meta)
            key = bytes(key)
            if op == "SET":
                if value_len > self.conn_buf_bytes:
                    return
                value = await session.external(reader.readexactly(value_len))
                # NIC-DMA stand-in: the wire payload materializes in this
                # connection's simulated input buffer.
                proc.write(in_va, value)
                existing = self.db.get(key)
                if existing is not None and existing[1] == value_len:
                    va = existing[0]  # jemalloc-style same-size reuse
                else:
                    va = self._alloc_value(cid, value_len)
                try:
                    await copier.amemcpy(va, in_va, value_len,
                                         timeout_cycles=self.timeout_cycles,
                                         session=session)
                    await copier.csync(va, value_len, session=session)
                except _REQUEST_ERRORS:
                    self.db.pop(key, None)
                    self.timeouts += 1
                    writer.write(STATUS_ERR + (0).to_bytes(LEN_BYTES,
                                                           "little"))
                else:
                    self.db[key] = (va, value_len)
                    writer.write(STATUS_OK + (0).to_bytes(LEN_BYTES,
                                                          "little"))
            elif op == "GET":
                entry = self.db.get(key)
                if entry is None:
                    writer.write(STATUS_MISS + (0).to_bytes(LEN_BYTES,
                                                            "little"))
                else:
                    va, length = entry
                    try:
                        await copier.amemcpy(out_va, va, length,
                                             timeout_cycles=self.timeout_cycles,
                                             session=session)
                        await copier.csync(out_va, length, session=session)
                    except _REQUEST_ERRORS:
                        self.timeouts += 1
                        writer.write(STATUS_ERR
                                     + (0).to_bytes(LEN_BYTES, "little"))
                    else:
                        payload = bytes(proc.read(out_va, length))
                        writer.write(STATUS_OK
                                     + length.to_bytes(LEN_BYTES, "little")
                                     + payload)
            else:
                return  # protocol error: drop the connection
            await session.external(writer.drain())
            self.requests_served += 1


class MemcachedSocketServer(_SocketFrontend):
    """The memcached-like multi-get cache behind a real TCP listener.

    Keeps the sim app's two distinguishing traits: per-*shard* queue fds
    (connections map to ``cid % n_shards``, so independent shards never
    share a ring) and multi-get gather (one MGET ``amemcpy``s N values
    into the reply buffer, one ``csync`` over the gathered range).  The
    store is a fixed 256-slot arena addressed by key id — VAs depend
    only on the key, never on arrival order.
    """

    N_SLOTS = 256  # key ids are single bytes

    def __init__(self, system, driver, max_conns=16, n_shards=2,
                 conn_buf_bytes=64 * 1024, slot_bytes=16 * 1024,
                 name="mc-sock"):
        super().__init__(system, driver, max_conns, name)
        self.conn_buf_bytes = conn_buf_bytes
        self.slot_bytes = slot_bytes
        self.proc = system.create_process(
            name, queue_capacity=max(1024, 2 * max_conns))
        self.lib = LibCopier(self.proc)
        self.copiers = []
        for _shard in range(max(1, n_shards)):
            fd = self.lib.copier_create_queue(
                capacity=max(1024, 2 * max_conns))
            self.copiers.append(
                AsyncCopier(driver, self.lib._client_for(fd)))
        proc = self.proc
        self._io = [(proc.mmap(conn_buf_bytes, populate=True,
                               name="%s-rx-%d" % (name, cid)),
                     proc.mmap(conn_buf_bytes, populate=True,
                               name="%s-tx-%d" % (name, cid)))
                    for cid in range(max_conns)]
        self.arena = proc.mmap(self.N_SLOTS * slot_bytes,
                               name="%s-slots" % name)
        self.slots = {}  # key_id -> (va, length)

    def _slot_va(self, key_id):
        return self.arena + key_id * self.slot_bytes

    async def _serve(self, session, cid, reader, writer):
        proc = self.proc
        copier = self.copiers[cid % len(self.copiers)]
        rx_va, tx_va = self._io[cid]
        while True:
            try:
                frame = await session.external(reader.readexactly(4))
                body_len = int.from_bytes(frame, "little")
                if not 2 <= body_len <= self.conn_buf_bytes:
                    return
                body = await session.external(reader.readexactly(body_len))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            op, nkeys = body[0], body[1]
            key_ids = list(body[2:2 + nkeys])
            if op == OP_SET:
                value_len = int.from_bytes(body[2 + nkeys:6 + nkeys],
                                           "little")
                value = body[6 + nkeys:6 + nkeys + value_len]
                if value_len > self.slot_bytes or len(value) != value_len:
                    return
                proc.write(rx_va, value)
                va = self._slot_va(key_ids[0])
                try:
                    await copier.amemcpy(va, rx_va, value_len,
                                         session=session)
                    await copier.csync(va, value_len, session=session)
                except _REQUEST_ERRORS:
                    self.timeouts += 1
                    writer.write((0).to_bytes(4, "little"))
                else:
                    self.slots[key_ids[0]] = (va, value_len)
                    writer.write((2).to_bytes(4, "little") + b"OK")
            elif op == OP_MGET:
                cursor = 0
                ok = True
                try:
                    for key_id in key_ids:
                        va, length = self.slots[key_id]
                        await copier.amemcpy(tx_va + cursor, va, length,
                                             session=session)
                        cursor += length
                    if cursor:
                        await copier.csync(tx_va, cursor, session=session)
                except _REQUEST_ERRORS:
                    self.timeouts += 1
                    ok = False
                except KeyError:
                    ok = False  # miss: empty reply
                if ok and cursor:
                    payload = bytes(proc.read(tx_va, cursor))
                    writer.write(cursor.to_bytes(4, "little") + payload)
                else:
                    writer.write((0).to_bytes(4, "little"))
            else:
                return
            await session.external(writer.drain())
            self.requests_served += 1
