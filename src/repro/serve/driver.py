"""The asyncio ↔ simulator bridge: SimDriver, sessions, and staged ops.

One :class:`SimDriver` coroutine owns the simulator and is the *only*
code that steps it; every other coroutine interacts with the sim through
:class:`~repro.serve.facade.AsyncCopier`, which wraps each request in a
:class:`PendingOp` — a simulator generator plus an asyncio future.  The
driver spawns the generator into the sim and the future resolves from
*inside* sim execution (a task's ``on_retire`` hook, or the generator
finishing), so a parked coroutine wakes exactly when its simulated
operation completes.  Everything runs on one event loop: there are no
threads and no locks, only turn-taking between the driver and the
serving coroutines.

Sessions make the deterministic ``gate`` pacing policy possible.  A
connection handler registers an :class:`AsyncSession` and then tells the
driver what it is blocked on: parked on a sim op (the facade marks
this), or waiting for the outside world (wrap socket awaits in
:meth:`AsyncSession.external`).  The gate advances the sim only when
every live session is parked on an *unresolved* op, then injects the
staged batch in sorted ``(session key, seq)`` order — wall-clock arrival
order stops mattering, and simulated counters become run-to-run
deterministic for closed-loop workloads.

Driver health is exported through :meth:`SimDriver.snapshot`, surfaced
as ``stats_snapshot()["serve"]`` on the attached copier service and
rendered by ``tools/copierstat.py``.
"""

import asyncio
import time

from repro.serve.pacing import WallClockRatio, make_pacing

# Session states.  A suspended handler coroutine is always in PARKED or
# EXTERNAL (its awaits are either facade ops or ``external()``-wrapped);
# RUNNING covers the instants it actually holds the loop.
RUNNING = "running"
PARKED = "parked"
EXTERNAL = "external"
CLOSED = "closed"


class AsyncSession:
    """One connection's identity and blocking state, as the gate sees it.

    ``key`` must be stable across runs (derive it from data the client
    sends — e.g. a hello ID — never from accept order) and mutually
    comparable with every other session key.
    """

    __slots__ = ("driver", "key", "seq", "state", "waiting")

    def __init__(self, driver, key):
        self.driver = driver
        self.key = key
        self.seq = 0
        self.state = RUNNING
        self.waiting = None  # the PendingOp this session is parked on

    def next_seq(self):
        seq = self.seq
        self.seq += 1
        return seq

    async def external(self, awaitable):
        """Await something outside the sim (socket I/O) under this session.

        Marks the session EXTERNAL so the gate knows the coroutine is
        waiting on the outside world, not on sim progress.
        """
        if self.state == CLOSED:
            raise RuntimeError("session %r is closed" % (self.key,))
        self.state = EXTERNAL
        self.driver.kick()
        try:
            return await awaitable
        finally:
            if self.state == EXTERNAL:
                self.state = RUNNING

    def close(self):
        """Deregister; a closed session no longer holds up the gate."""
        if self.state == CLOSED:
            return
        self.state = CLOSED
        self.waiting = None
        self.driver._sessions.pop(self.key, None)
        self.driver.stats.sessions_closed += 1
        self.driver.kick()


class PendingOp:
    """A sim generator wired to the asyncio future awaiting its outcome."""

    __slots__ = ("key", "factory", "future", "session", "kind")

    def __init__(self, key, factory, future, session, kind):
        self.key = key
        self.factory = factory
        self.future = future
        self.session = session
        self.kind = kind


class ServeStats:
    """Counters for the driver's stepping loop (``snapshot()`` exports)."""

    __slots__ = ("steps", "events", "idle_polls", "rounds",
                 "ops_submitted", "ops_resolved",
                 "sessions_opened", "sessions_closed")

    def __init__(self):
        self.steps = 0
        self.events = 0
        self.idle_polls = 0
        self.rounds = 0
        self.ops_submitted = 0
        self.ops_resolved = 0
        self.sessions_opened = 0
        self.sessions_closed = 0


class SimDriver:
    """The asyncio task that steps the simulator under a pacing policy.

    Construct from a :class:`~repro.kernel.system.System` (binds its env
    and copier service, and registers itself as ``service.serve_driver``
    so driver stats ride along in ``stats_snapshot()``), or from a bare
    ``env`` for engine-level tests.  Run it as a task (``async with
    driver:`` manages one), submit work through an
    :class:`~repro.serve.facade.AsyncCopier`, and :meth:`stop` it when
    the serving frontends wind down.
    """

    def __init__(self, system=None, env=None, service=None, pacing=None,
                 batch_events=2048, expected_sessions=0,
                 idle_sleep=0.0005, gate_poll=0.05):
        if system is not None:
            env = system.env
            if service is None:
                service = system.copier
        if env is None:
            raise ValueError("SimDriver needs a system= or env=")
        self.env = env
        self.service = service
        if service is not None:
            service.serve_driver = self
        self.pacing = make_pacing(pacing)
        self.batch_events = batch_events
        #: The gate will not fire its first round before this many
        #: sessions have registered (protects round 1 from slow accepts).
        self.expected_sessions = expected_sessions
        self.idle_sleep = idle_sleep
        self.gate_poll = gate_poll
        self.stats = ServeStats()
        self._sessions = {}
        self._staged = []
        self._op_counter = 0
        self._stop = False
        self._task = None
        self._wakeup = asyncio.Event()
        # Wall↔sim anchor for the ratio policy, set on first tick.
        self._wall0 = None
        self._cyc0 = 0

    # ------------------------------------------------------------- sessions

    def session(self, key):
        """Register a new session under a run-stable, comparable ``key``."""
        if key in self._sessions:
            raise ValueError("duplicate session key %r" % (key,))
        sess = AsyncSession(self, key)
        self._sessions[key] = sess
        self.stats.sessions_opened += 1
        self.kick()
        return sess

    @property
    def sessions_live(self):
        return len(self._sessions)

    @property
    def parked_ops(self):
        """Coroutines currently parked on unresolved sim operations."""
        return self.stats.ops_submitted - self.stats.ops_resolved

    # ----------------------------------------------------------- submission

    def submit(self, op):
        """Accept a :class:`PendingOp` from the facade.

        Deterministic pacing stages the op for the next gate round;
        otherwise it is spawned into the sim immediately.
        """
        self.stats.ops_submitted += 1
        op.future.add_done_callback(self._op_resolved)
        if self.pacing.deterministic:
            self._staged.append(op)
        else:
            self._spawn(op)
        self.kick()

    def _op_resolved(self, _future):
        self.stats.ops_resolved += 1

    def _spawn(self, op):
        self._op_counter += 1
        self.env.spawn(op.factory(),
                       name="serve-%s-%d" % (op.kind, self._op_counter))

    def kick(self):
        """Wake the driver loop (new work, or a gate condition change)."""
        self._wakeup.set()

    # ------------------------------------------------------------ lifecycle

    def stop(self):
        self._stop = True
        self.kick()

    async def run(self):
        """Step the sim until :meth:`stop` — the driver's main coroutine."""
        self._stop = False
        if self.pacing.deterministic:
            tick = self._gate_tick
        elif isinstance(self.pacing, WallClockRatio):
            tick = self._ratio_tick
        else:
            tick = self._free_tick
        while not self._stop:
            await tick()

    async def __aenter__(self):
        self._task = asyncio.ensure_future(self.run())
        return self

    async def __aexit__(self, exc_type, exc, tb):
        self.stop()
        if self._task is not None:
            await self._task
            self._task = None
        return False

    # ----------------------------------------------------- stepping: common

    def _step(self, max_events=None, max_cycles=None):
        report = self.env.step(max_events=max_events, max_cycles=max_cycles)
        self.stats.steps += 1
        self.stats.events += report.executed
        return report

    async def _idle_wait(self, max_wait):
        """Sleep until kicked (or ``max_wait`` seconds).  Single-threaded
        asyncio: no kick can land between the caller's condition check
        and the ``clear()`` here, so the pattern is race-free."""
        self.stats.idle_polls += 1
        self._wakeup.clear()
        try:
            await asyncio.wait_for(self._wakeup.wait(), max_wait)
        except asyncio.TimeoutError:
            pass

    # ------------------------------------------------------- stepping: free

    async def _free_tick(self):
        if self.env.idle:
            await self._idle_wait(self.idle_sleep)
            return
        self._step(max_events=self.batch_events)
        await asyncio.sleep(0)

    # ------------------------------------------------------ stepping: ratio

    async def _ratio_tick(self):
        now = time.monotonic()
        if self._wall0 is None:
            self._wall0 = now
            self._cyc0 = self.env.now
        rate = self.pacing.cycles_per_second
        target = self._cyc0 + int((now - self._wall0) * rate)
        behind = target - self.env.now
        if behind > 0:
            self._step(max_events=self.batch_events, max_cycles=behind)
            await asyncio.sleep(0)
        else:
            # Ahead of the wall clock: sleep (at most) the shortfall.
            await self._idle_wait(min(max(-behind / rate, self.idle_sleep),
                                      0.02))

    # ------------------------------------------------------- stepping: gate

    def _gate_ready(self):
        """The lockstep condition: staged work exists and every live
        session is parked on an op whose future is still unresolved.

        A session whose future already resolved counts as *about to run*
        (its coroutine just hasn't been scheduled yet) — advancing then
        would let host scheduling decide which round its next op joins,
        which is exactly the non-determinism the gate exists to remove.
        Sessions waiting on the outside world (EXTERNAL) also hold the
        gate: with closed-loop clients their next submission is en route.
        """
        if not self._staged:
            return False
        if self.stats.sessions_opened < self.expected_sessions:
            return False
        for sess in self._sessions.values():
            if sess.state != PARKED:
                return False
            op = sess.waiting
            if op is None or op.future.done():
                return False
        return True

    async def _gate_tick(self):
        if self._gate_ready():
            await self._run_round()
        else:
            await self._idle_wait(self.gate_poll)

    async def _run_round(self):
        """Inject the staged batch in sorted order and step until every
        op in it has resolved."""
        batch, self._staged = self._staged, []
        batch.sort(key=lambda op: op.key)
        for op in batch:
            self._spawn(op)
        self.stats.rounds += 1
        pending = batch
        while True:
            pending = [op for op in pending if not op.future.done()]
            if not pending:
                break
            if self.env.idle:
                # The sim cannot make progress but ops are unresolved:
                # the service is wedged or stopped.  Fail the waiters
                # rather than hanging the frontend.
                exc = RuntimeError(
                    "simulator went idle with %d unresolved serve ops"
                    % len(pending))
                for op in pending:
                    if not op.future.done():
                        op.future.set_exception(exc)
                break
            self._step(max_events=self.batch_events)
            # Let resolved coroutines resume mid-round (they may stage
            # ops for the *next* round; composition is unaffected).
            await asyncio.sleep(0)

    # -------------------------------------------------------------- exports

    def snapshot(self):
        """Driver stats for ``stats_snapshot()["serve"]`` / copierstat."""
        s = self.stats
        return {
            "pacing": self.pacing.name,
            "steps": s.steps,
            "events": s.events,
            "events_per_step": round(s.events / s.steps, 2) if s.steps else 0.0,
            "idle_polls": s.idle_polls,
            "rounds": s.rounds,
            "ops_submitted": s.ops_submitted,
            "ops_resolved": s.ops_resolved,
            "parked": self.parked_ops,
            "sessions_opened": s.sessions_opened,
            "sessions_closed": s.sessions_closed,
            "sessions_live": self.sessions_live,
        }

    def __repr__(self):
        return "<SimDriver %s sessions=%d parked=%d>" % (
            self.pacing.name, self.sessions_live, self.parked_ops)
