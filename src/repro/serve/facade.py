"""AsyncCopier: the coroutine-facing copy API.

Wraps one :class:`~repro.copier.client.CopierClient` so ordinary asyncio
code can use the Copier service with ``await`` instead of ``yield
from``::

    copier = AsyncCopier(driver, proc.client)
    await copier.amemcpy(dst, src, nbytes, session=sess)
    await copier.csync(dst, nbytes, session=sess)

Each call builds a simulator generator plus an asyncio future, hands the
pair to the driver as a :class:`~repro.serve.driver.PendingOp`, and
parks the caller on the future:

* ``amemcpy`` resolves at *task retirement* via the task's ``on_retire``
  hook — ``done``/``shed`` deliver the task, every other outcome raises
  (``efault`` → the task's :class:`~repro.copier.errors.TaskEFault`,
  ``deadline-miss`` → :class:`~repro.copier.errors.DeadlineMissed`,
  cancel/reap → :class:`~repro.copier.errors.CopyAborted`).
* ``csync`` / ``acancel`` / ``acall`` resolve when their generator
  finishes, delivering its return value.
* Submission-time failures (:class:`~repro.copier.errors.AdmissionReject`,
  ``QueueFull``) raise out of the generator and are delivered into the
  awaiting coroutine the same way.

Pass ``session=`` so the gate pacing policy can order the op; relative
``timeout_cycles`` are converted to absolute deadlines at *injection*
time (inside the generator), not at staging time.
"""

import asyncio

from repro.copier.errors import (AdmissionReject, CopierSecurityError,
                                 CopyAborted, DeadlineMissed,
                                 TransientCopierError)
from repro.copier.queues import QueueFull
from repro.fleet.errors import FleetError
from repro.mem.errors import MemoryLifecycleError
from repro.mem.faults import MemoryFault
from repro.mem.phys import OutOfMemory
from repro.serve.driver import PARKED, RUNNING, PendingOp

#: The simulated kernel/copier failure surface an op generator may raise.
#: These are *results* of the submitted operation and belong in its
#: future; anything else (a TypeError in user code, a bug in the sim)
#: must unwind the driver loudly, not masquerade as an op failure.
SIM_OP_ERRORS = (CopyAborted, AdmissionReject, DeadlineMissed,
                 CopierSecurityError, TransientCopierError, QueueFull,
                 MemoryFault, MemoryLifecycleError, OutOfMemory, FleetError)


def _retire_error(task, outcome):
    """Map a non-success retirement outcome to the exception to raise."""
    if task.error is not None:
        return task.error
    if outcome == "deadline-miss":
        return DeadlineMissed(
            "copy task #%d missed its deadline" % task.task_id)
    return CopyAborted("copy task #%d retired: %s" % (task.task_id, outcome))


class AsyncCopier:
    """``await``-able amemcpy/csync/acancel over one Copier client."""

    def __init__(self, driver, client):
        self.driver = driver
        self.client = client

    # ------------------------------------------------------------ operations

    async def amemcpy(self, dst_va, src_va, nbytes, handler=None,
                      segment_bytes=None, lazy=False, deadline=None,
                      timeout_cycles=None, session=None):
        """Submit an async copy; resolves when the task *retires*.

        Returns the retired :class:`~repro.copier.task.CopyTask` on
        ``done``/``shed``; raises the mapped error otherwise.
        """
        client = self.client
        future = asyncio.get_running_loop().create_future()

        def on_retire(task, outcome):
            if future.done():
                return
            if outcome in ("done", "shed"):
                future.set_result(task)
            else:
                future.set_exception(_retire_error(task, outcome))

        def gen():
            dl = deadline
            if dl is None and timeout_cycles is not None:
                dl = client.env.now + timeout_cycles
            yield from client.amemcpy(dst_va, src_va, nbytes,
                                      handler=handler,
                                      segment_bytes=segment_bytes,
                                      lazy=lazy, deadline=dl,
                                      on_retire=on_retire)

        return await self._submit(gen, future, session,
                                  resolve_on_exit=False, kind="amemcpy")

    async def csync(self, va, nbytes, queue_kind="u", deadline=None,
                    timeout_cycles=None, session=None):
        """Wait until [va, va+nbytes) from prior async copies is ready."""
        client = self.client
        future = asyncio.get_running_loop().create_future()

        def gen():
            dl = deadline
            if dl is None and timeout_cycles is not None:
                dl = client.env.now + timeout_cycles
            yield from client.csync(va, nbytes, queue_kind=queue_kind,
                                    deadline=dl)
            return nbytes

        return await self._submit(gen, future, session,
                                  resolve_on_exit=True, kind="csync")

    async def acancel(self, va, nbytes, queue_kind=None, session=None):
        """Cancel unfinished copies over the range; returns the count."""
        client = self.client

        future = asyncio.get_running_loop().create_future()

        def gen():
            return (yield from client.cancel(va, nbytes,
                                             queue_kind=queue_kind))

        return await self._submit(gen, future, session,
                                  resolve_on_exit=True, kind="acancel")

    async def csync_all(self, session=None):
        """Drain every outstanding copy on this client."""
        client = self.client
        future = asyncio.get_running_loop().create_future()

        def gen():
            yield from client.csync_all()

        return await self._submit(gen, future, session,
                                  resolve_on_exit=True, kind="csync-all")

    async def acall(self, factory, session=None, kind="call"):
        """Escape hatch: run any sim generator, await its return value.

        ``factory`` is a zero-argument callable returning a fresh
        generator (so the gate can stage the op before it first runs).
        """
        future = asyncio.get_running_loop().create_future()
        return await self._submit(factory, future, session,
                                  resolve_on_exit=True, kind=kind)

    # -------------------------------------------------------------- plumbing

    async def _submit(self, factory, future, session, resolve_on_exit, kind):
        driver = self.driver

        def wrapped():
            try:
                value = yield from factory()
            except SIM_OP_ERRORS as exc:
                # Deliver sim-side failures (AdmissionReject, QueueFull,
                # DeadlineMissed...) into the awaiting coroutine instead
                # of letting them unwind the driver's stepping loop.
                # Non-sim exceptions (a bug in a handler, a TypeError in
                # user code) deliberately propagate: swallowing them into
                # the future would disguise broken code as a failed copy.
                if not future.done():
                    future.set_exception(exc)
                return
            if resolve_on_exit and not future.done():
                future.set_result(value)

        if session is not None:
            key = (session.key, session.next_seq())
        else:
            key = ((), driver.stats.ops_submitted)
        op = PendingOp(key, wrapped, future, session, kind)
        if session is not None:
            session.state = PARKED
            session.waiting = op
        driver.submit(op)
        try:
            return await future
        finally:
            if session is not None and session.waiting is op:
                session.waiting = None
                if session.state == PARKED:
                    session.state = RUNNING
