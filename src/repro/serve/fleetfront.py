"""Fleet-aware serving: one asyncio frontend over N simulated machines.

:class:`FleetDriver` plays the :class:`~repro.serve.driver.SimDriver`
role for a :class:`~repro.fleet.fleet.Fleet`: it is the only code that
advances the fleet clock (``stepper.step_round()``), and it bridges
each :class:`~repro.fleet.fleet.FleetOp` to an asyncio future so
connection handlers can ``await`` cross-node sharded operations the
same way single-node handlers await facade copies.  Stepping is
free-running only — a fleet round advances *every* node, so the
single-machine gate policy has no meaning here; closed-loop fleet
determinism is exercised sim-side by ``tests/fleet`` instead.

:class:`FleetRedisServer` speaks the exact
:class:`~repro.serve.frontends.RedisSocketServer` wire protocol (hello
id, ``apps.common`` framing, ``status + len + value`` replies) but
routes each connection to a gateway node by hello id.  If a client's
gateway dies mid-request the op can never settle on that machine; the
driver fails the future with
:class:`~repro.fleet.errors.FleetUnavailable`, the client gets an
error reply, and the *next* request transparently re-homes to a live
gateway — a connection survives the death of its node.
"""

import asyncio

from repro.fleet.errors import FleetUnavailable
from repro.serve.driver import PARKED, RUNNING, AsyncSession, ServeStats
from repro.serve.frontends import (
    HELLO_LEN,
    LEN_BYTES,
    REQ_META,
    STATUS_ERR,
    STATUS_MISS,
    STATUS_OK,
    _SocketFrontend,
)

from repro.apps.common import decode_header


class FleetDriver:
    """The asyncio task that steps a fleet and settles fleet ops.

    Rounds only advance while ops are in flight (an idle fleet holds
    its virtual clock still, like an idle ``SimDriver``); tests that
    need detection/promotion to progress without client load call
    :meth:`settle`.
    """

    def __init__(self, fleet, rounds_per_tick=4, idle_sleep=0.0005,
                 max_rounds_per_op=200_000):
        self.fleet = fleet
        self.rounds_per_tick = rounds_per_tick
        self.idle_sleep = idle_sleep
        self.max_rounds_per_op = max_rounds_per_op
        self.stats = ServeStats()
        self._sessions = {}
        self._inflight = []  # (FleetOp, future, submit_round)
        self._stop = False
        self._task = None
        self._wakeup = asyncio.Event()

    # ------------------------------------------------------------- sessions

    def session(self, key):
        if key in self._sessions:
            raise ValueError("duplicate session key %r" % (key,))
        sess = AsyncSession(self, key)
        self._sessions[key] = sess
        self.stats.sessions_opened += 1
        self.kick()
        return sess

    @property
    def sessions_live(self):
        return len(self._sessions)

    @property
    def parked_ops(self):
        return self.stats.ops_submitted - self.stats.ops_resolved

    def kick(self):
        self._wakeup.set()

    # ----------------------------------------------------------- submission

    def submit(self, kind, key, value=None, gateway=None, session=None):
        """Submit a fleet op; returns a future resolving to the FleetOp.

        The fleet settles ops synchronously inside ``step_round()``,
        which only ever runs in this driver's task on the same event
        loop — resolving the future from the callback is loop-safe.
        """
        future = asyncio.get_event_loop().create_future()
        try:
            op = self.fleet.submit(kind, key, value=value, gateway=gateway)
        except FleetUnavailable as exc:
            future.set_exception(exc)
            return future
        self.stats.ops_submitted += 1
        if session is not None:
            session.state = PARKED
            session.waiting = op

        def on_done(op, future=future, session=session):
            self.stats.ops_resolved += 1
            if session is not None and session.waiting is op:
                session.waiting = None
                if session.state == PARKED:
                    session.state = RUNNING
            if not future.done():
                future.set_result(op)

        op.add_done_callback(on_done)
        if not op.done:
            self._inflight.append((op, future, self.fleet.stepper.rounds))
        self.kick()
        return future

    def _sweep(self):
        """Fail futures whose op can no longer settle (dead gateway) or
        has been in flight implausibly long (wedged fleet)."""
        if not self._inflight:
            return
        keep = []
        for entry in self._inflight:
            op, future, submit_round = entry
            if op.done or future.done():
                continue
            if not self.fleet.nodes[op.gateway_id].alive:
                self.stats.ops_resolved += 1
                future.set_exception(FleetUnavailable(
                    "gateway %r died under %s %r"
                    % (op.gateway_id, op.kind, op.key)))
                continue
            if self.fleet.stepper.rounds - submit_round > self.max_rounds_per_op:
                self.stats.ops_resolved += 1
                future.set_exception(RuntimeError(
                    "fleet op %r unresolved after %d rounds"
                    % (op, self.max_rounds_per_op)))
                continue
            keep.append(entry)
        self._inflight = keep

    # ------------------------------------------------------------ lifecycle

    def stop(self):
        self._stop = True
        self.kick()

    async def run(self):
        self._stop = False
        while not self._stop:
            if not self._inflight:
                self.stats.idle_polls += 1
                self._wakeup.clear()
                try:
                    await asyncio.wait_for(self._wakeup.wait(),
                                           self.idle_sleep)
                except asyncio.TimeoutError:
                    pass
                continue
            executed = 0
            for _ in range(self.rounds_per_tick):
                executed += self.fleet.stepper.step_round()
            self._sweep()
            self.stats.steps += 1
            self.stats.events += executed
            await asyncio.sleep(0)

    async def settle(self, rounds):
        """Advance the fleet clock without client load (detection,
        promotion and resync need rounds to pass)."""
        for _ in range(rounds):
            self.fleet.stepper.step_round()
            if _ % 64 == 63:
                await asyncio.sleep(0)
        self._sweep()

    async def __aenter__(self):
        self._task = asyncio.ensure_future(self.run())
        return self

    async def __aexit__(self, exc_type, exc, tb):
        self.stop()
        if self._task is not None:
            await self._task
            self._task = None
        return False

    # -------------------------------------------------------------- exports

    def snapshot(self):
        s = self.stats
        return {
            "pacing": "fleet-free",
            "steps": s.steps,
            "events": s.events,
            "idle_polls": s.idle_polls,
            "rounds": self.fleet.stepper.rounds,
            "ops_submitted": s.ops_submitted,
            "ops_resolved": s.ops_resolved,
            "parked": self.parked_ops,
            "sessions_opened": s.sessions_opened,
            "sessions_closed": s.sessions_closed,
            "sessions_live": self.sessions_live,
        }

    def __repr__(self):
        return "<FleetDriver nodes=%d parked=%d>" % (len(self.fleet.nodes),
                                                     self.parked_ops)


class FleetRedisServer(_SocketFrontend):
    """The Redis-like wire protocol, sharded across the fleet.

    A connection's home gateway is ``cid % n_nodes``; every request
    re-checks liveness and falls over to the next live node, so the
    shard router (not the client) absorbs node deaths.
    """

    def __init__(self, fleet, driver, max_conns=16, name="fleet-redis"):
        super().__init__(None, driver, max_conns, name)
        self.fleet = fleet
        self.failovers = 0

    def _gateway(self, cid):
        n = len(self.fleet.nodes)
        home = cid % n
        if self.fleet.nodes[home].alive:
            return home
        for offset in range(1, n):
            candidate = (home + offset) % n
            if self.fleet.nodes[candidate].alive:
                self.failovers += 1
                return candidate
        raise FleetUnavailable("no live gateway for connection %d" % cid)

    async def _serve(self, session, cid, reader, writer):
        while True:
            try:
                meta = await session.external(reader.readexactly(REQ_META))
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            op_name, key, value_len = decode_header(meta)
            key = bytes(key)
            if op_name == "SET":
                try:
                    value = await session.external(
                        reader.readexactly(value_len))
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                reply = await self._do(session, "set", key, value)
            elif op_name == "GET":
                reply = await self._do(session, "get", key)
            else:
                return  # protocol error: drop the connection
            writer.write(reply)
            await session.external(writer.drain())
            self.requests_served += 1

    async def _do(self, session, kind, key, value=None):
        try:
            gateway = self._gateway(session.key[1])
            future = self.driver.submit(kind, key, value=value,
                                        gateway=gateway, session=session)
            op = await future
        except (FleetUnavailable, RuntimeError):
            self.timeouts += 1
            return STATUS_ERR + (0).to_bytes(LEN_BYTES, "little")
        if op.error is not None:
            self.timeouts += 1
            return STATUS_ERR + (0).to_bytes(LEN_BYTES, "little")
        if kind == "set":
            return STATUS_OK + (0).to_bytes(LEN_BYTES, "little")
        if op.result is None:
            return STATUS_MISS + (0).to_bytes(LEN_BYTES, "little")
        return (STATUS_OK + len(op.result).to_bytes(LEN_BYTES, "little")
                + bytes(op.result))


__all__ = ["FleetDriver", "FleetRedisServer", "HELLO_LEN"]
