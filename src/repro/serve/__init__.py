"""The async serving frontend: asyncio apps over the simulated Copier.

Layering::

    bench/async_load.py      real-socket closed-loop load generator
    serve/frontends.py       RedisSocketServer / MemcachedSocketServer
    serve/facade.py          AsyncCopier — await amemcpy/csync/acancel
    serve/driver.py          SimDriver + AsyncSession + PendingOp
    serve/pacing.py          free / ratio / gate pacing policies
    sim/engine.py            Environment.step() — the cooperative seam
"""

from repro.serve.driver import AsyncSession, PendingOp, ServeStats, SimDriver
from repro.serve.facade import AsyncCopier
from repro.serve.fleetfront import FleetDriver, FleetRedisServer
from repro.serve.frontends import (
    MemcachedSocketServer,
    RedisSocketServer,
    encode_hello,
)
from repro.serve.pacing import (
    FreeRunning,
    LockstepGate,
    PacingPolicy,
    PacingSpecError,
    WallClockRatio,
    make_pacing,
)

__all__ = [
    "AsyncCopier",
    "AsyncSession",
    "FleetDriver",
    "FleetRedisServer",
    "FreeRunning",
    "LockstepGate",
    "MemcachedSocketServer",
    "PacingPolicy",
    "PacingSpecError",
    "PendingOp",
    "RedisSocketServer",
    "ServeStats",
    "SimDriver",
    "WallClockRatio",
    "encode_hello",
    "make_pacing",
]
