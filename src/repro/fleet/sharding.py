"""Consistent-hash sharding of the keyspace across fleet nodes.

The ring hashes with :func:`hashlib.sha1` — never Python's builtin
``hash()``, whose string seed is randomized per interpreter run and
would destroy run-to-run determinism.  Each node owns ``vnodes``
points on the ring; a key's *primary* is the first node clockwise from
the key's point and its *backup* is the next **distinct** node.  The
classic consistent-hashing property holds: removing a node only remaps
keys that node owned (as primary or backup); every other key keeps its
owners — the property the shard-router test suite locks down.
"""

import bisect
import hashlib


def _point(data):
    """Map bytes to a 64-bit ring position, stable across runs."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


def key_point(key):
    if isinstance(key, str):
        key = key.encode()
    return _point(b"key:" + bytes(key))


class HashRing:
    """A consistent-hash ring with an explicit, inspectable shard map."""

    def __init__(self, node_ids=(), vnodes=32):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.nodes = set()
        self._points = []   # sorted ring positions
        self._owners = []   # node id at the matching position
        for node_id in node_ids:
            self.add_node(node_id)

    def _vnode_points(self, node_id):
        return [_point(b"node:%r:%d" % (node_id, v))
                for v in range(self.vnodes)]

    def add_node(self, node_id):
        if node_id in self.nodes:
            raise ValueError("node %r already on the ring" % (node_id,))
        self.nodes.add(node_id)
        for point in self._vnode_points(node_id):
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node_id)

    def remove_node(self, node_id):
        if node_id not in self.nodes:
            return
        self.nodes.discard(node_id)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != node_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def owners(self, key, n_replicas=2):
        """The first ``n_replicas`` distinct nodes clockwise from ``key``.

        Index 0 is the primary, index 1 the backup.  Fewer live nodes
        than replicas yields a shorter list; an empty ring yields ``[]``.
        """
        if not self._points:
            return []
        idx = bisect.bisect_right(self._points, key_point(key))
        owners = []
        for step in range(len(self._points)):
            owner = self._owners[(idx + step) % len(self._points)]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == n_replicas:
                    break
        return owners

    def primary(self, key):
        owners = self.owners(key, n_replicas=1)
        return owners[0] if owners else None

    def backup(self, key):
        owners = self.owners(key, n_replicas=2)
        return owners[1] if len(owners) > 1 else None

    def shard_map(self, keys, n_replicas=2):
        """Explicit ``key -> (owner, ...)`` map for a key set."""
        return {key: tuple(self.owners(key, n_replicas=n_replicas))
                for key in keys}

    def __len__(self):
        return len(self.nodes)

    def __repr__(self):
        return "<HashRing nodes=%d vnodes=%d>" % (len(self.nodes),
                                                  self.vnodes)
