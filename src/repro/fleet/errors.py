"""Typed errors for the fleet layer."""


class FleetError(Exception):
    """Base class for fleet-level failures."""


class FleetTimeout(FleetError):
    """A cross-node request or replication ack missed its reply window."""


class NotOwner(FleetError):
    """A node was asked to serve a key it does not currently own.

    Raised under the shared membership view when a request races a
    promotion; the gateway re-routes to the current primary and retries.
    """


class FleetUnavailable(FleetError):
    """An operation exhausted its retry budget without an acknowledgment."""


class StoreFull(FleetError):
    """A node's store arena cannot fit another value."""
