"""Per-node durable state: commit WAL plus periodic checkpoints.

A :class:`NodeDisk` is the one piece of a fleet node that survives
:meth:`~repro.fleet.node.FleetNode.kill` — the stand-in for the
machine's local disk.  Every versioned commit appends a WAL record;
every ``COPIER_CKPT_PERIOD`` stepper rounds the fleet asks the disk to
take a checkpoint, which snapshots the whole store into the same
versioned, checksummed envelope :mod:`repro.ckpt.format` uses for
machine checkpoints and truncates the WAL it covers (the WAL is the
delta since the last checkpoint — that is the "checkpoint LSN").

Recovery replays the last checkpoint and then the WAL tail, so a
restarted node comes back with every value it ever committed, at the
version it committed it — the foundation of the restart-and-rejoin
protocol's zero-lost-acked-writes guarantee.  A damaged checkpoint blob
surfaces as a typed :class:`~repro.ckpt.errors.CheckpointError`, never
a silently half-recovered store.
"""

from repro.ckpt import format as ckpt_format


class NodeDisk:
    """Crash-surviving WAL + checkpoint pair for one fleet node."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.wal = []            # (version, key, value) since last checkpoint
        self.ckpt_blob = None    # repro.ckpt.format envelope, or None
        self.ckpt_lsn = 0        # commits covered by ckpt_blob
        self.lsn = 0             # total commits ever logged
        self.wal_appends = 0
        self.checkpoints = 0
        self.recoveries = 0

    def log(self, version, key, value):
        """Append one committed write to the WAL (synchronous, durable)."""
        self.lsn += 1
        self.wal.append((version, key, value))
        self.wal_appends += 1

    def take_checkpoint(self, store, versions):
        """Snapshot the whole store; the WAL restarts from here."""
        db = {key: (versions.get(key, 0), store.value_bytes(key))
              for key in sorted(store.db)}
        self.ckpt_blob = ckpt_format.dump_bytes(
            {"node": self.node_id, "lsn": self.lsn, "db": db})
        self.ckpt_lsn = self.lsn
        self.wal = []
        self.checkpoints += 1

    def recover(self):
        """Checkpoint plus WAL replay: ``{key: (version, value)}``.

        WAL entries win over checkpoint entries when newer, matching
        commit order.  Raises a typed ``CheckpointError`` if the blob is
        damaged rather than returning a partial store.
        """
        entries = {}
        if self.ckpt_blob is not None:
            entries.update(ckpt_format.load_bytes(self.ckpt_blob)["db"])
        for version, key, value in self.wal:
            current = entries.get(key)
            if current is None or version >= current[0]:
                entries[key] = (version, value)
        self.recoveries += 1
        return entries

    def wipe(self):
        """Simulated disk loss: recovery must come from a peer."""
        self.wal = []
        self.ckpt_blob = None
        self.ckpt_lsn = 0

    def snapshot(self):
        return {"lsn": self.lsn, "ckpt_lsn": self.ckpt_lsn,
                "wal_entries": len(self.wal),
                "wal_appends": self.wal_appends,
                "checkpoints": self.checkpoints,
                "recoveries": self.recoveries,
                "has_checkpoint": self.ckpt_blob is not None}
