"""Local fault detector: the per-node heartbeat generator.

Each node runs one LFD process that wakes every ``period_cycles`` and
reports a sequence-numbered heartbeat to the global fault detector.
The control path is modeled, not free: the beat arrives
``control_latency`` cycles later and is suppressed entirely while the
node's control link to :data:`~repro.fleet.interconnect.GFD_ENDPOINT`
is partitioned — which is how the chaos campaign manufactures
false-positive promotions of a perfectly healthy node.
"""

from repro.fleet.interconnect import GFD_ENDPOINT
from repro.sim import Timeout


class LocalFaultDetector:
    def __init__(self, node, interconnect, gfd, period_cycles,
                 control_latency):
        self.node = node
        self.interconnect = interconnect
        self.gfd = gfd
        self.period_cycles = period_cycles
        self.control_latency = control_latency
        self.beats = 0
        self.suppressed = 0

    def loop(self):
        seq = 0
        while True:
            yield Timeout(self.period_cycles)
            if not self.node.alive:
                return
            if self.interconnect.is_partitioned(self.node.node_id,
                                                GFD_ENDPOINT):
                self.suppressed += 1
                continue
            self.gfd.heartbeat(self.node.node_id, seq,
                               self.node.env.now + self.control_latency)
            self.beats += 1
            seq += 1
