"""Node-level chaos: kill/partition/slow storms against a live fleet.

The campaign drives seeded closed-loop client streams while firing
node-level faults, then audits the fleet against a shadow-model
oracle.  Each stream owns a disjoint set of write keys and runs one op
at a time, so per key the acknowledged writes form a strict sequence —
the oracle records every issued value and the index of the last one
the fleet *acknowledged*.  The final audit (after healing and
settling) demands that every key with an acknowledged write reads back
a value at least as new as the last ack: **zero lost acknowledged
writes**.  Unacknowledged writes may or may not have committed; both
outcomes are legal.

Fault kinds (all fired on the deterministic op-completion tick, like
the single-node :class:`~repro.chaos.ChaosController`):

* ``node_kill`` — a machine drops dead; detection is organic (missed
  heartbeats), promotion and resync follow.  Kills are gated on the
  previous death having been detected and resynced, matching the
  replication factor of two: the storm stays within what the protocol
  tolerates, which is exactly what the oracle proves.
* ``link_partition`` — a node pair (or a node's GFD control link, which
  manufactures a false-positive promotion) drops traffic for a seeded
  number of ticks, then heals.
* ``link_slow`` — a pair's latency/bandwidth degrade by a seeded factor
  for a while.  Slow links delay, never drop: acks still flow.

The lossy campaign (``lossy=True``) arms the per-link fault plan and
layers two more storm kinds on top via
:class:`LossyChaosController`:

* ``link_lossy`` — a pair's drop/dup/reorder/corrupt rates burst to
  seeded values for a while, then fall back to the plan's baseline.
  The reliable channel must deliver exactly-once anyway.
* ``bitflip_storm`` — every live node's Copier service swaps in an
  ``integrity`` fault injector (silent DMA bit flips, torn engine
  writes, poisoned frames) with the end-to-end CRC armed.  The oracle's
  phantom-read and final-audit checks double as the *no corrupted
  payload is ever acked or served* proof.
"""

import random

from repro.faultinject import FaultInjector, FaultPlan
from repro.fleet.fleet import Fleet
from repro.fleet.interconnect import GFD_ENDPOINT, LinkFaultPlan


def _value(stream_id, key, idx, base_bytes):
    """Deterministic, per-(key, idx) unique value with varying length."""
    seedbytes = b"%d:%s:%d" % (stream_id, key, idx)
    pattern = bytes((sum(seedbytes) + i) % 251 for i in range(97))
    length = base_bytes + (idx % 5) * 128
    reps = length // len(pattern) + 1
    return (seedbytes + b"|" + pattern * reps)[:length]


class _Stream:
    """One closed-loop client: seeded ops, single-writer keys."""

    def __init__(self, stream_id, fleet, seed, n_ops, n_keys, value_bytes,
                 all_keys):
        self.stream_id = stream_id
        self.fleet = fleet
        self.rng = random.Random(repr(("fleet-stream", seed, stream_id)))
        self.n_ops = n_ops
        self.value_bytes = value_bytes
        self.keys = [b"s%d-k%d" % (stream_id, k) for k in range(n_keys)]
        self.all_keys = all_keys
        self.write_idx = {key: 0 for key in self.keys}
        self.ops_done = 0
        self.acked = 0
        self.failed = 0
        self.abandoned = 0
        self.get_checked = 0
        self.pending = None       # (op, kind, key, idx)
        self.violations = []

    @property
    def finished(self):
        return self.ops_done >= self.n_ops and self.pending is None

    def _gateway(self):
        live = self.fleet.live_nodes
        return live[self.rng.randrange(len(live))].node_id

    def submit_next(self, oracle):
        if self.ops_done + (1 if self.pending else 0) >= self.n_ops:
            return
        rng = self.rng
        if rng.random() < 0.7:
            key = self.keys[rng.randrange(len(self.keys))]
            idx = self.write_idx[key]
            value = _value(self.stream_id, key, idx, self.value_bytes)
            oracle[key]["issued"].append(value)
            op = self.fleet.set(key, value, gateway=self._gateway())
            self.pending = (op, "set", key, idx)
        else:
            key = self.all_keys[rng.randrange(len(self.all_keys))]
            op = self.fleet.get(key, gateway=self._gateway())
            self.pending = (op, "get", key, None)

    def poll(self, oracle):
        """Returns True when an op completed this round (a chaos tick)."""
        if self.pending is None:
            return False
        op, kind, key, idx = self.pending
        if not op.done:
            if not self.fleet.nodes[op.gateway_id].alive:
                # The gateway died under the op: the client sees a
                # connection drop, never an ack.
                self.pending = None
                self.ops_done += 1
                self.abandoned += 1
                return True
            return False
        self.pending = None
        self.ops_done += 1
        if kind == "set":
            if op.acked:
                self.acked += 1
                entry = oracle[key]
                entry["acked_idx"] = max(entry["acked_idx"], idx)
                self.write_idx[key] = idx + 1
            else:
                self.failed += 1
                # Unacked: may or may not have committed.  Reuse of the
                # same index would make "which commit won" ambiguous,
                # so the writer moves on.
                self.write_idx[key] = idx + 1
        else:
            if op.error is None and op.result is not None:
                entry = oracle.get(key)
                if entry is not None and op.result not in entry["issued"]:
                    self.violations.append(
                        ("phantom-read", key, len(op.result)))
                self.get_checked += 1
            elif op.error is not None:
                self.failed += 1
        return True


class FleetChaosController:
    """Fires node-level faults on the deterministic op-completion tick."""

    def __init__(self, fleet, seed, n_events, total_ops):
        self.fleet = fleet
        self.rng = random.Random(repr(("fleet-chaos-controller", seed)))
        self.events = []
        self.kills = 0
        self.max_kills = max(len(fleet.nodes) - 2, 0)
        self.tick_count = 0
        self.last_kill_tick = -100
        self.heal_at = []  # (tick, kind, a, b)
        window = max(n_events + 5, int(total_ops * 0.6))
        self.schedule = sorted(self.rng.sample(range(3, 3 + window),
                                               min(n_events, window)))

    def tick(self):
        self.tick_count += 1
        while self.heal_at and self.heal_at[0][0] <= self.tick_count:
            _, kind, a, b = self.heal_at.pop(0)
            self._heal_one(kind, a, b)
            self.events.append((self.tick_count, "heal-" + kind,
                                "%s/%s" % (a, b)))
        while self.schedule and self.schedule[0] <= self.tick_count:
            self.schedule.pop(0)
            self._fire()

    def _heal_one(self, kind, a, b):
        if kind == "partition":
            self.fleet.interconnect.heal(a, b)
        else:
            self.fleet.interconnect.slow(a, b, 1.0)

    def _membership_settled(self):
        """No declared death is still resyncing, no real kill is still
        undetected, and no control-plane partition is pending — the
        windows in which losing another owner would exceed the
        replication factor."""
        fleet = self.fleet
        if fleet.resyncs_active:
            return False
        declared = {node_id for _view, node_id in fleet.promotions}
        if any(k not in declared for k in fleet.kills):
            return False
        if any(kind == "partition" and GFD_ENDPOINT in (a, b)
               for _tick, kind, a, b in self.heal_at):
            return False
        # A node silent long enough to be halfway to declaration is a
        # promotion in the making; wait it out.
        if fleet.gfd is not None:
            horizon = fleet.stepper.horizon
            for node_id in fleet.gfd.alive:
                if (fleet.nodes[node_id].alive
                        and horizon - fleet.gfd.last_beat[node_id]
                        > 3 * fleet.lfd_period):
                    return False
        return True

    def _kill_allowed(self):
        if self.kills >= self.max_kills:
            return False
        if len(self.fleet.live_nodes) <= 2:
            return False
        if not self._membership_settled():
            return False
        return self.tick_count - self.last_kill_tick >= 20

    def _fire(self):
        rng = self.rng
        fleet = self.fleet
        roll = rng.random()
        if roll < 0.3 and self._kill_allowed():
            live = fleet.live_nodes
            victim = live[rng.randrange(len(live))].node_id
            fleet.kill_node(victim)
            self.kills += 1
            self.last_kill_tick = self.tick_count
            self.events.append((self.tick_count, "node_kill", victim))
            return
        node_ids = [node.node_id for node in fleet.nodes]
        if roll < 0.65:
            a = node_ids[rng.randrange(len(node_ids))]
            if rng.random() < 0.3 and self._membership_settled():
                b = GFD_ENDPOINT  # false-positive promotion fuel
            else:
                b = node_ids[rng.randrange(len(node_ids))]
                if a == b:
                    b = node_ids[(node_ids.index(a) + 1) % len(node_ids)]
            fleet.interconnect.partition(a, b)
            duration = rng.randrange(8, 25)
            self.heal_at.append((self.tick_count + duration, "partition",
                                 a, b))
            self.heal_at.sort()
            self.events.append((self.tick_count, "link_partition",
                                "%s/%s" % (a, b)))
        else:
            a = node_ids[rng.randrange(len(node_ids))]
            b = node_ids[rng.randrange(len(node_ids))]
            if a == b:
                b = node_ids[(node_ids.index(a) + 1) % len(node_ids)]
            factor = rng.choice([2.0, 4.0, 8.0])
            fleet.interconnect.slow(a, b, factor)
            duration = rng.randrange(10, 30)
            self.heal_at.append((self.tick_count + duration, "slow", a, b))
            self.heal_at.sort()
            self.events.append((self.tick_count, "link_slow",
                                "%s/%s x%g" % (a, b, factor)))


class LossyChaosController(FleetChaosController):
    """Adds lossy-link bursts and node-local bitflip storms to the mix.

    All extra draws come from a dedicated ``fleet-lossy`` RNG stream so
    arming the controller never perturbs the base controller's kill /
    partition / slow sequences for the same seed.  Lossy bursts require
    the fleet's :class:`~repro.fleet.interconnect.LinkFaultPlan` to be
    armed (the burst is ``set_link_faults`` on top of the plan's
    baseline; healing is ``reset_link_faults`` back to it).  Bitflip
    storms swap an ``integrity`` fault plan into every live node's
    Copier service — with the end-to-end CRC armed, so the silent
    corruption is caught and repaired before anything is acked.
    """

    def __init__(self, fleet, seed, n_events, total_ops):
        super().__init__(fleet, seed, n_events, total_ops)
        self.rng_lossy = random.Random(repr(("fleet-lossy", seed)))
        self.seed = seed
        self.bitflip_storms = 0
        self.lossy_bursts = 0
        self._armed_nodes = {}   # node_id -> (copier, prev_faults, prev_e2e)

    def _heal_one(self, kind, a, b):
        if kind == "lossy":
            self.fleet.interconnect.reset_link_faults(a, b)
        elif kind == "bitflip":
            self._disarm_bitflips()
        else:
            super()._heal_one(kind, a, b)

    def _fire(self):
        roll = self.rng_lossy.random()
        if roll < 0.45:
            super()._fire()
            return
        rng = self.rng_lossy
        fleet = self.fleet
        node_ids = [node.node_id for node in fleet.nodes]
        if roll < 0.8:
            a = node_ids[rng.randrange(len(node_ids))]
            b = node_ids[rng.randrange(len(node_ids))]
            if a == b:
                b = node_ids[(node_ids.index(a) + 1) % len(node_ids)]
            rates = {
                "drop_rate": rng.uniform(0.05, 0.30),
                "dup_rate": rng.uniform(0.0, 0.20),
                "reorder_rate": rng.uniform(0.0, 0.25),
                "reorder_window": rng.randint(1, 4),
                "corrupt_rate": rng.uniform(0.0, 0.15),
            }
            fleet.interconnect.set_link_faults(a, b, **rates)
            duration = rng.randrange(8, 25)
            self.heal_at.append((self.tick_count + duration, "lossy", a, b))
            self.heal_at.sort()
            self.lossy_bursts += 1
            self.events.append(
                (self.tick_count, "link_lossy",
                 "%s/%s drop=%.2f dup=%.2f reorder=%.2f corrupt=%.2f"
                 % (a, b, rates["drop_rate"], rates["dup_rate"],
                    rates["reorder_rate"], rates["corrupt_rate"])))
        else:
            self._arm_bitflips()
            duration = rng.randrange(10, 30)
            self.heal_at.append((self.tick_count + duration, "bitflip",
                                 "fleet", "fleet"))
            self.heal_at.sort()
            self.events.append((self.tick_count, "bitflip_storm",
                                "%d nodes" % len(self._armed_nodes)))

    def _arm_bitflips(self):
        self.bitflip_storms += 1
        plan = FaultPlan.integrity(
            seed=(self.seed, self.bitflip_storms).__repr__())
        for node in self.fleet.live_nodes:
            copier = node.system.copier
            if copier is None or node.node_id in self._armed_nodes:
                continue
            inj = FaultInjector(plan, env=copier.env, trace=copier.trace)
            self._armed_nodes[node.node_id] = (copier, copier.faults,
                                               copier.e2e_crc)
            copier.faults = inj
            copier.e2e_crc = True
            if copier.dma is not None:
                copier.dma.injector = inj

    def _disarm_bitflips(self):
        for node_id, (copier, prev_faults, prev_e2e) in (
                self._armed_nodes.items()):
            node = self.fleet.nodes[node_id]
            if node.system.copier is not copier:
                continue  # the node restarted mid-storm with a fresh machine
            copier.faults = prev_faults
            copier.e2e_crc = prev_e2e
            if copier.dma is not None:
                copier.dma.injector = (prev_faults if prev_faults.armed
                                       else None)
        self._armed_nodes.clear()


class RestartChaosController(FleetChaosController):
    """Kill → restart → rejoin storms on top of the base fault mix.

    Every kill is eventually answered by a restart: ``on-declare``
    restarts the node at the first tick after the GFD declares it dead
    — the death resyncs have just been spawned, so the rejoin lands
    *mid-resync*, the nastiest window.  ``delayed`` waits a seeded
    number of ticks after declaration first.  A seeded fraction of
    restarts wipe the node's disk and recover peer-assisted over the
    checkpoint-shipping path.  With ``double_crash`` armed, once the
    fleet is whole and settled the controller kills *both* current
    owners of a seeded key in the same tick — acked data for that shard
    survives only through the disks and the version-reconciled rejoin.
    """

    def __init__(self, fleet, seed, n_events, total_ops, all_keys,
                 restart_policy="on-declare", restart_delay=(5, 15),
                 wipe_prob=0.25, double_crash=False):
        super().__init__(fleet, seed, n_events, total_ops)
        self.rng_restart = random.Random(repr(("fleet-restart", seed)))
        self.restart_policy = restart_policy
        self.restart_delay = restart_delay
        self.wipe_prob = wipe_prob
        self.all_keys = all_keys
        # Nodes come back, so the storm can afford more kills than the
        # one-shot campaign without ever dropping below two live nodes.
        self.max_kills = 2 * max(len(fleet.nodes) - 2, 1)
        self.restart_due = {}    # node_id -> tick (delayed policy)
        self.restart_log = []    # (tick, node_id, during_resync, wiped)
        self.double_crash_armed = double_crash and len(fleet.nodes) >= 4
        # Don't fire into an empty store: wait until a good fraction of
        # the streams' writes have been acknowledged, so the crashed
        # pair actually holds data the oracle will come asking about.
        self.double_crash_after = max(10, total_ops // 4)
        self.double_crashes = []  # (tick, key, owners)

    def tick(self):
        super().tick()
        self._restart_pass()
        self._double_crash_pass()

    def _membership_settled(self):
        """Restart-aware settling: a kill is resolved once the node is
        back alive *or* currently declared dead (the base campaign's
        declared-set check breaks as soon as a node is killed twice),
        and a recovering node counts as an owner in flight."""
        fleet = self.fleet
        if fleet.recovering_nodes or fleet.resyncs_active:
            return False
        if any(kind == "partition" and GFD_ENDPOINT in (a, b)
               for _tick, kind, a, b in self.heal_at):
            return False
        if fleet.gfd is not None:
            for node_id in set(fleet.kills):
                node = fleet.nodes[node_id]
                if not node.alive and node_id in fleet.gfd.alive:
                    return False  # killed, not yet declared
            horizon = fleet.stepper.horizon
            for node_id in fleet.gfd.alive:
                if (fleet.nodes[node_id].alive
                        and horizon - fleet.gfd.last_beat[node_id]
                        > 3 * fleet.lfd_period):
                    return False
        return True

    def _restart_pass(self):
        fleet = self.fleet
        for node in fleet.nodes:
            node_id = node.node_id
            if node.alive:
                self.restart_due.pop(node_id, None)
                continue
            if fleet.gfd is not None and node_id in fleet.gfd.alive:
                continue  # not declared yet; rejoin would be a non-event
            if self.restart_policy == "delayed":
                due = self.restart_due.get(node_id)
                if due is None:
                    lo, hi = self.restart_delay
                    self.restart_due[node_id] = (
                        self.tick_count + self.rng_restart.randrange(lo, hi))
                    continue
                if self.tick_count < due:
                    continue
                self.restart_due.pop(node_id, None)
            during_resync = fleet.resyncs_active
            # Disk loss is only survivable while every *other* replica
            # holder is whole: wiping a second disk inside one
            # overlapping outage destroys both durable copies, which no
            # replication-factor-2 protocol can recover from.  The roll
            # is drawn unconditionally to keep the rng stream stable.
            roll = self.rng_restart.random()
            others_whole = all(peer.alive and not peer.recovering
                               for peer in fleet.nodes if peer is not node)
            wiped = others_whole and roll < self.wipe_prob
            if wiped:
                node.disk.wipe()
            fleet.restart_node(node_id, peer_assist=wiped)
            self.restart_log.append((self.tick_count, node_id,
                                     during_resync, wiped))
            self.events.append(
                (self.tick_count, "node_restart",
                 "%s%s%s" % (node_id,
                             "/mid-resync" if during_resync else "",
                             "/wiped" if wiped else "")))

    def _double_crash_pass(self):
        if not self.double_crash_armed:
            return
        if self.tick_count < self.double_crash_after:
            return
        fleet = self.fleet
        if not all(node.alive for node in fleet.nodes):
            return
        if not self._membership_settled():
            return
        if self.tick_count - self.last_kill_tick < 20:
            return
        key = self.all_keys[self.rng_restart.randrange(len(self.all_keys))]
        owners = list(fleet.ring.owners(key)[:2])
        for node_id in owners:
            fleet.kill_node(node_id)
        self.kills += len(owners)
        self.last_kill_tick = self.tick_count
        self.double_crash_armed = False
        self.double_crashes.append((self.tick_count, key, tuple(owners)))
        self.events.append((self.tick_count, "double_crash",
                            "%r -> %s" % (key, owners)))


def run_fleet_campaign(seed=0, n_nodes=4, n_streams=6, n_ops=12, n_keys=3,
                       n_events=10, value_bytes=4096, max_rounds=400_000,
                       settle_rounds=400, fleet_kwargs=None, lossy=False):
    """Run one fleet chaos campaign; returns a result dict.

    The result carries the fault log, promotion history, per-stream
    outcomes, the zero-lost-acked-writes audit, leak checks and a
    determinism fingerprint source — everything the fleet soak job and
    ``tests/fleet`` assert on.

    With ``lossy=True`` the fleet runs with the per-link fault plan
    armed (``mixed`` baseline unless ``fleet_kwargs`` overrides it),
    the reliable channel carrying every fleet message, and the storm
    mix extended with lossy bursts and bitflip storms — the audit then
    additionally proves no corrupted payload was ever acked or served.
    """
    fleet_kwargs = dict(fleet_kwargs or {})
    if lossy:
        fleet_kwargs.setdefault("link_fault_plan",
                                LinkFaultPlan.named("mixed", seed))
        fleet_kwargs.setdefault("backoff_jitter_seed", seed)
    fleet = Fleet(n_nodes=n_nodes, **fleet_kwargs)
    streams = []
    all_keys = [b"s%d-k%d" % (s, k)
                for s in range(n_streams) for k in range(n_keys)]
    oracle = {key: {"issued": [], "acked_idx": -1} for key in all_keys}
    for sid in range(n_streams):
        streams.append(_Stream(sid, fleet, seed, n_ops, n_keys, value_bytes,
                               all_keys))
    controller_cls = LossyChaosController if lossy else FleetChaosController
    controller = controller_cls(fleet, seed, n_events,
                                total_ops=n_streams * n_ops)

    rounds = 0
    while not all(stream.finished for stream in streams):
        if rounds >= max_rounds:
            raise RuntimeError("fleet chaos campaign stalled after %d rounds"
                               % rounds)
        for stream in streams:
            if stream.poll(oracle):
                controller.tick()
            if stream.pending is None and not stream.finished:
                stream.submit_next(oracle)
        fleet.stepper.step_round()
        rounds += 1

    # Quiesce: drain outstanding storms (lossy bursts fall back to the
    # plan baseline, bitflip injectors disarm), heal every link, let
    # pending detections/resyncs finish.  The baseline link plan stays
    # armed through the audit — the reliable channel must carry the
    # final reads over the same lossy wire it served all campaign.
    for _tick, kind, a, b in list(controller.heal_at):
        controller._heal_one(kind, a, b)
    controller.heal_at.clear()
    fleet.interconnect.heal_all()
    fleet.stepper.settle(settle_rounds)

    failures = []
    lost_acked = []
    audited = 0
    live_ids = sorted(node.node_id for node in fleet.live_nodes)
    audit_ops = []
    for i, key in enumerate(sorted(oracle)):
        gateway = live_ids[i % len(live_ids)]
        audit_ops.append((key, fleet.get(key, gateway=gateway)))
    fleet.run_ops([op for _, op in audit_ops])
    for key, op in audit_ops:
        entry = oracle[key]
        if op.error is not None:
            failures.append("final GET of %r failed: %r" % (key, op.error))
            continue
        audited += 1
        if entry["acked_idx"] < 0:
            if op.result is not None and op.result not in entry["issued"]:
                lost_acked.append(("phantom", key))
            continue
        if op.result is None:
            lost_acked.append(("missing", key, entry["acked_idx"]))
            continue
        try:
            got_idx = entry["issued"].index(op.result)
        except ValueError:
            lost_acked.append(("phantom", key))
            continue
        if got_idx < entry["acked_idx"]:
            lost_acked.append(("stale", key, got_idx, entry["acked_idx"]))
    if lost_acked:
        failures.append("lost acknowledged writes: %r" % (lost_acked,))

    for stream in streams:
        if stream.violations:
            failures.append("stream %d consistency violations: %r"
                            % (stream.stream_id, stream.violations))

    leaked = fleet.leaked_pins()
    if leaked:
        failures.append("%d page pins leaked across the fleet" % leaked)

    snap = fleet.snapshot()
    result = {
        "seed": seed,
        "n_nodes": n_nodes,
        "events": controller.events,
        "kills": controller.kills,
        "promotions": list(fleet.promotions),
        "rounds": rounds,
        "streams": {s.stream_id: {"ops_done": s.ops_done, "acked": s.acked,
                                  "failed": s.failed,
                                  "abandoned": s.abandoned,
                                  "gets_checked": s.get_checked}
                    for s in streams},
        "ops": snap["ops"],
        "interconnect": {"messages": snap["interconnect"]["messages"],
                         "bytes": snap["interconnect"]["bytes"],
                         "dropped": snap["interconnect"]["dropped"]},
        "nodes": snap["nodes"],
        "store_digests": {node.node_id: node.store.digest()
                          for node in fleet.live_nodes},
        "audited_keys": audited,
        "lost_acked": lost_acked,
        "leaked_pins": leaked,
        "failures": failures,
    }
    if fleet.link_fault_plan is not None:
        result["link_faults"] = fleet.interconnect.stats()["totals"]
        result["netpath"] = fleet.netpath_stats()
        result["integrity"] = {
            node.node_id: node.system.copier.integrity.as_dict()
            for node in fleet.live_nodes
            if node.system.copier is not None}
        if lossy:
            result["lossy_bursts"] = controller.lossy_bursts
            result["bitflip_storms"] = controller.bitflip_storms
    return result


def run_restart_campaign(seed=0, n_nodes=4, n_streams=6, n_ops=12, n_keys=3,
                         n_events=10, value_bytes=4096, max_rounds=400_000,
                         settle_rounds=400, restart_policy="on-declare",
                         wipe_prob=0.25, double_crash=False,
                         fleet_kwargs=None):
    """Crash-recovery chaos: kill → restart → rejoin storms, audited.

    Same closed-loop streams and shadow oracle as
    :func:`run_fleet_campaign`, but every killed node comes back from
    its disk (or a peer's shipped checkpoint when the seed wipes the
    disk) and rejoins the ring mid-campaign.  After the streams drain,
    any still-dead node is restarted, links heal, and the fleet runs
    until every resync and recovery is finished — then the audit runs
    against the *whole* fleet: zero lost acknowledged writes, zero
    phantom reads, zero leaked pins, and per-node recovery (MTTR)
    counters for the bench scenario.
    """
    fleet = Fleet(n_nodes=n_nodes, **(fleet_kwargs or {}))
    streams = []
    all_keys = [b"s%d-k%d" % (s, k)
                for s in range(n_streams) for k in range(n_keys)]
    oracle = {key: {"issued": [], "acked_idx": -1} for key in all_keys}
    for sid in range(n_streams):
        streams.append(_Stream(sid, fleet, seed, n_ops, n_keys, value_bytes,
                               all_keys))
    controller = RestartChaosController(
        fleet, seed, n_events, total_ops=n_streams * n_ops,
        all_keys=all_keys, restart_policy=restart_policy,
        wipe_prob=wipe_prob, double_crash=double_crash)

    rounds = 0
    while not all(stream.finished for stream in streams):
        if rounds >= max_rounds:
            raise RuntimeError("restart chaos campaign stalled after %d "
                               "rounds" % rounds)
        for stream in streams:
            if stream.poll(oracle):
                controller.tick()
            if stream.pending is None and not stream.finished:
                stream.submit_next(oracle)
        fleet.stepper.step_round()
        rounds += 1

    # Finalize: heal, bring every dead node home, drain recovery fully.
    fleet.interconnect.heal_all()
    for node in fleet.nodes:
        if not node.alive:
            fleet.restart_node(node.node_id)
            controller.restart_log.append((controller.tick_count,
                                           node.node_id, False, False))
            controller.events.append((controller.tick_count, "node_restart",
                                      "%s/final" % node.node_id))
    fleet.stepper.run_until(
        lambda: not fleet.resyncs_active and not fleet.recovering_nodes,
        max_rounds=max_rounds)
    fleet.stepper.settle(settle_rounds)

    failures = []
    lost_acked = []
    audited = 0
    live_ids = sorted(node.node_id for node in fleet.live_nodes)
    if len(live_ids) != n_nodes:
        failures.append("not every node rejoined: %r" % (live_ids,))
    audit_ops = []
    for i, key in enumerate(sorted(oracle)):
        gateway = live_ids[i % len(live_ids)]
        audit_ops.append((key, fleet.get(key, gateway=gateway)))
    fleet.run_ops([op for _, op in audit_ops])
    for key, op in audit_ops:
        entry = oracle[key]
        if op.error is not None:
            failures.append("final GET of %r failed: %r" % (key, op.error))
            continue
        audited += 1
        if entry["acked_idx"] < 0:
            if op.result is not None and op.result not in entry["issued"]:
                lost_acked.append(("phantom", key))
            continue
        if op.result is None:
            lost_acked.append(("missing", key, entry["acked_idx"]))
            continue
        try:
            got_idx = entry["issued"].index(op.result)
        except ValueError:
            lost_acked.append(("phantom", key))
            continue
        if got_idx < entry["acked_idx"]:
            lost_acked.append(("stale", key, got_idx, entry["acked_idx"]))
    if lost_acked:
        failures.append("lost acknowledged writes: %r" % (lost_acked,))

    for stream in streams:
        if stream.violations:
            failures.append("stream %d consistency violations: %r"
                            % (stream.stream_id, stream.violations))

    leaked = fleet.leaked_pins()
    if leaked:
        failures.append("%d page pins leaked across the fleet" % leaked)

    recoveries = sum(node.counters.get("recoveries", 0)
                     for node in fleet.nodes)
    recovery_cycles = [node.counters["recovery_cycles"]
                       for node in fleet.nodes
                       if node.counters.get("recovery_cycles")]
    snap = fleet.snapshot()
    return {
        "seed": seed,
        "n_nodes": n_nodes,
        "events": controller.events,
        "kills": controller.kills,
        "promotions": list(fleet.promotions),
        "restarts": list(fleet.restarts),
        "restart_log": list(controller.restart_log),
        "double_crashes": list(controller.double_crashes),
        "recoveries": recoveries,
        "mttr_cycles": (sum(recovery_cycles) // len(recovery_cycles)
                        if recovery_cycles else 0),
        "rounds": rounds,
        "streams": {s.stream_id: {"ops_done": s.ops_done, "acked": s.acked,
                                  "failed": s.failed,
                                  "abandoned": s.abandoned,
                                  "gets_checked": s.get_checked}
                    for s in streams},
        "ops": snap["ops"],
        "interconnect": {"messages": snap["interconnect"]["messages"],
                         "bytes": snap["interconnect"]["bytes"],
                         "dropped": snap["interconnect"]["dropped"]},
        "nodes": snap["nodes"],
        "store_digests": {node.node_id: node.store.digest()
                          for node in fleet.live_nodes},
        "audited_keys": audited,
        "lost_acked": lost_acked,
        "leaked_pins": leaked,
        "failures": failures,
    }


def fleet_determinism_fingerprint(result):
    """The parts of a fleet campaign result that must be identical
    run-to-run for the same seed."""
    fingerprint = {
        "events": result["events"],
        "promotions": result["promotions"],
        "rounds": result["rounds"],
        "streams": result["streams"],
        "ops": result["ops"],
        "interconnect": result["interconnect"],
        "nodes": result["nodes"],
        "store_digests": result["store_digests"],
    }
    for key in ("restarts", "restart_log", "double_crashes",
                "link_faults", "netpath", "integrity",
                "lossy_bursts", "bitflip_storms"):
        if key in result:
            fingerprint[key] = result[key]
    return fingerprint
