"""One fleet node: a whole simulated machine plus its fleet plumbing."""

from collections import defaultdict

from repro.fleet.disk import NodeDisk
from repro.fleet.netpath import MAX_MSG, SimLock
from repro.fleet.store import KVStore


class FleetNode:
    """A full ``System`` (own env + Copier service) wearing a node id.

    The fleet wires per-peer channels into ``channels_out`` /
    ``channels_in`` with matching tx/rx buffers; everything the node
    spawns into its environment is tracked in ``_procs`` so a node kill
    can interrupt all of it and let ``finally`` cleanup run.

    The node object itself outlives its machine: :meth:`kill` drops the
    ``System``, :meth:`restart` builds a fresh one and recovers the
    store from the :class:`~repro.fleet.disk.NodeDisk`, which is the
    only state that survives the crash.  ``versions`` maps each key to
    the fleet-global version of the locally committed value — the
    currency of the checkpoint-aware delta resync that runs on rejoin.
    """

    def __init__(self, node_id, system_factory, store_kwargs=None):
        self.node_id = node_id
        self._system_factory = system_factory
        self._store_kwargs = dict(store_kwargs or {})
        self.system = system_factory()
        self.env = self.system.env
        self.store = KVStore(self.system, name="n%s-store" % node_id,
                             **self._store_kwargs)
        self.disk = NodeDisk(node_id)
        self.alive = True
        self.recovering = False
        self.restarts = 0
        self.versions = {}       # key -> fleet-global commit version
        self.channels_out = {}   # peer id -> Channel (we are src)
        self.channels_in = {}    # peer id -> Channel (we are dst)
        self.tx_bufs = {}
        self.tx_locks = {}
        self.rx_bufs = {}
        self.pending_replies = {}  # op_id -> Event
        self.ckpt_ship = {}      # requester id -> in-flight checkpoint blob
        self.counters = defaultdict(int)
        self._procs = []

    def wire_peer(self, peer_id, out_channel=None, in_channel=None):
        proc = self.store.proc
        if out_channel is not None:
            self.channels_out[peer_id] = out_channel
            self.tx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-tx-%s" % (self.node_id, peer_id))
            self.tx_locks[peer_id] = SimLock(self.env)
        if in_channel is not None:
            self.channels_in[peer_id] = in_channel
            self.rx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-rx-%s" % (self.node_id, peer_id))

    def spawn(self, generator, name):
        proc = self.env.spawn(generator, name=name)
        self._procs.append(proc)
        if len(self._procs) > 64:
            self._procs = [p for p in self._procs if p.is_alive]
        return proc

    def kill(self):
        """Node death: interrupt everything, reap, release every buffer.

        Kill exceptions land at each process's next resumption, so the
        environment is stepped locally (the node is about to leave the
        fleet round-robin) until the interrupted generators have
        unwound their ``finally`` blocks — that is what frees in-flight
        kernel buffers.  Then the store process exit-reaps its copier
        tasks, the aspace tears down, and the rx sockets release any
        queued skbs.  A second kill is a no-op: the machine is already
        gone, there is nothing left to tear down.

        The :class:`NodeDisk` survives — committed writes stay durable
        through the crash, which is what :meth:`restart` recovers from.
        """
        if not self.alive:
            return
        self.alive = False
        self.recovering = False
        for proc in self._procs:
            if proc.is_alive:
                proc.kill()
        for _ in range(64):
            report = self.env.step(max_events=4096)
            if all(not p.is_alive for p in self._procs):
                break
            if report.executed == 0:
                break
        self.system.kill_process(self.store.proc)
        for channel in self.channels_in.values():
            channel.close()
        self.pending_replies.clear()

    def restart(self, from_checkpoint=True):
        """Boot a fresh machine for this node id and recover its store.

        With ``from_checkpoint`` the disk's last checkpoint plus WAL
        tail is replayed into the new store (version map included); a
        wiped/ignored disk boots empty — peer-assisted recovery must
        fill it.  Fleet-side wiring (channels, rx loops, LFD, GFD
        rejoin, resync) is :meth:`Fleet.restart_node`'s job; this method
        is purely machine-local.
        """
        if self.alive:
            raise RuntimeError("node %s is alive; kill it before restart"
                               % self.node_id)
        self.system = self._system_factory()
        self.env = self.system.env
        self.store = KVStore(self.system, name="n%s-store" % self.node_id,
                             **self._store_kwargs)
        self.versions = {}
        self.pending_replies = {}
        self.ckpt_ship = {}
        self._procs = []
        self.restarts += 1
        proc = self.store.proc
        for peer_id in self.channels_out:
            self.tx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-tx-%s" % (self.node_id, peer_id))
            self.tx_locks[peer_id] = SimLock(self.env)
        for peer_id in self.channels_in:
            self.rx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-rx-%s" % (self.node_id, peer_id))
        if from_checkpoint:
            for key, (version, value) in sorted(self.disk.recover().items()):
                self.store.load_value(key, value)
                if version:
                    self.versions[key] = version
            self.counters["recovered_keys"] = len(self.store.db)
        self.alive = True

    def leaked_pins(self):
        return self.system.leaked_pins()

    def snapshot(self):
        copier = self.system.copier
        snap = {
            "node": self.node_id,
            "alive": self.alive,
            "recovering": self.recovering,
            "restarts": self.restarts,
            "now": self.env.now,
            "events": self.env.events_executed,
            "store": self.store.snapshot(),
            "disk": self.disk.snapshot(),
            "counters": dict(sorted(self.counters.items())),
        }
        if copier is not None:
            stats = copier.stats_snapshot()
            snap["copier"] = {
                "rounds": stats["dispatcher"]["rounds"],
                "bytes_to_dma": stats["dispatcher"]["bytes_to_dma"],
                "bytes_to_avx": stats["dispatcher"]["bytes_to_avx"],
                "outcomes": stats["stages"]["outcomes"],
            }
        return snap

    def __repr__(self):
        return "<FleetNode %s %s>" % (self.node_id,
                                      "up" if self.alive else "down")
