"""One fleet node: a whole simulated machine plus its fleet plumbing."""

from collections import defaultdict

from repro.fleet.netpath import MAX_MSG, SimLock
from repro.fleet.store import KVStore


class FleetNode:
    """A full ``System`` (own env + Copier service) wearing a node id.

    The fleet wires per-peer channels into ``channels_out`` /
    ``channels_in`` with matching tx/rx buffers; everything the node
    spawns into its environment is tracked in ``_procs`` so a node kill
    can interrupt all of it and let ``finally`` cleanup run.
    """

    def __init__(self, node_id, system_factory, store_kwargs=None):
        self.node_id = node_id
        self.system = system_factory()
        self.env = self.system.env
        self.store = KVStore(self.system, name="n%s-store" % node_id,
                             **(store_kwargs or {}))
        self.alive = True
        self.channels_out = {}   # peer id -> Channel (we are src)
        self.channels_in = {}    # peer id -> Channel (we are dst)
        self.tx_bufs = {}
        self.tx_locks = {}
        self.rx_bufs = {}
        self.pending_replies = {}  # op_id -> Event
        self.counters = defaultdict(int)
        self._procs = []

    def wire_peer(self, peer_id, out_channel=None, in_channel=None):
        proc = self.store.proc
        if out_channel is not None:
            self.channels_out[peer_id] = out_channel
            self.tx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-tx-%s" % (self.node_id, peer_id))
            self.tx_locks[peer_id] = SimLock(self.env)
        if in_channel is not None:
            self.channels_in[peer_id] = in_channel
            self.rx_bufs[peer_id] = proc.mmap(
                MAX_MSG, populate=True,
                name="n%s-rx-%s" % (self.node_id, peer_id))

    def spawn(self, generator, name):
        proc = self.env.spawn(generator, name=name)
        self._procs.append(proc)
        if len(self._procs) > 64:
            self._procs = [p for p in self._procs if p.is_alive]
        return proc

    def kill(self):
        """Node death: interrupt everything, reap, release every buffer.

        Kill exceptions land at each process's next resumption, so the
        environment is stepped locally (the node is about to leave the
        fleet round-robin) until the interrupted generators have
        unwound their ``finally`` blocks — that is what frees in-flight
        kernel buffers.  Then the store process exit-reaps its copier
        tasks, the aspace tears down, and the rx sockets release any
        queued skbs.
        """
        if not self.alive:
            return
        self.alive = False
        for proc in self._procs:
            if proc.is_alive:
                proc.kill()
        for _ in range(64):
            report = self.env.step(max_events=4096)
            if all(not p.is_alive for p in self._procs):
                break
            if report.executed == 0:
                break
        self.system.kill_process(self.store.proc)
        for channel in self.channels_in.values():
            channel.close()
        self.pending_replies.clear()

    def leaked_pins(self):
        return self.system.leaked_pins()

    def snapshot(self):
        copier = self.system.copier
        snap = {
            "node": self.node_id,
            "alive": self.alive,
            "now": self.env.now,
            "events": self.env.events_executed,
            "store": self.store.snapshot(),
            "counters": dict(sorted(self.counters.items())),
        }
        if copier is not None:
            stats = copier.stats_snapshot()
            snap["copier"] = {
                "rounds": stats["dispatcher"]["rounds"],
                "bytes_to_dma": stats["dispatcher"]["bytes_to_dma"],
                "bytes_to_avx": stats["dispatcher"]["bytes_to_avx"],
                "outcomes": stats["stages"]["outcomes"],
            }
        return snap

    def __repr__(self):
        return "<FleetNode %s %s>" % (self.node_id,
                                      "up" if self.alive else "down")
