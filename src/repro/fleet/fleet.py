"""The fleet composition root: N machines, one deterministic clock.

Stepping model (conservative parallel discrete-event simulation): every
node owns an independent :class:`~repro.sim.engine.Environment`; the
:class:`FleetStepper` advances them round-robin, each round pushing
every live node to a common horizon ``rounds * quantum`` with
``env.step(max_cycles=...)``.  Determinism requires exactly one rule:
**the quantum never exceeds the smallest interconnect latency** (data
or control).  Then any cross-node message computed against the
sender's clock arrives strictly in the receiver's future regardless of
the order nodes step within a round, so the fleet behaves as one
machine with a single virtual clock.  The GFD ticks at each horizon,
after all nodes — membership changes happen at deterministic times, in
sorted node order.

Data path: keys shard on the consistent-hash ring.  A gateway node
serves a key it owns locally, otherwise forwards over the per-pair
:class:`~repro.fleet.netpath.Channel`.  A SET is acknowledged only
after the primary has committed *and* every other current owner has
applied a synchronous replica — together with the re-check of the
owner set after replication and post-promotion resync, that is what
makes acknowledged writes survive any storm that leaves a current
owner standing.
"""

import os

from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.fleet.errors import (FleetError, FleetTimeout, FleetUnavailable,
                                NotOwner, StoreFull)
from repro.fleet.gfd import GlobalFaultDetector
from repro.fleet.interconnect import GFD_ENDPOINT, Interconnect
from repro.fleet.lfd import LocalFaultDetector
from repro.fleet.netpath import MAX_MSG, Channel
from repro.fleet.node import FleetNode
from repro.fleet.sharding import HashRing
from repro.kernel.system import System
from repro.sim import Timeout, WaitEvent

# Message types on the inter-node wire.
MSG_SET = 1
MSG_GET = 2
MSG_GET_ANY = 3   # owner-check-free read (backup fallback / read repair)
MSG_REPL = 4
ACK_OK = 16
ACK_MISS = 17
ACK_ERR = 18
_ACKS = (ACK_OK, ACK_MISS, ACK_ERR)

_COPY_ERRORS = (CopyAborted, DeadlineMissed, AdmissionReject)


def encode_msg(mtype, op_id, key, value=b""):
    if isinstance(key, str):
        key = key.encode()
    return (bytes([mtype]) + op_id.to_bytes(8, "little")
            + len(key).to_bytes(2, "little") + key
            + len(value).to_bytes(4, "little") + value)


def decode_msg(data):
    mtype = data[0]
    op_id = int.from_bytes(data[1:9], "little")
    key_len = int.from_bytes(data[9:11], "little")
    key = bytes(data[11:11 + key_len])
    pos = 11 + key_len
    value_len = int.from_bytes(data[pos:pos + 4], "little")
    value = bytes(data[pos + 4:pos + 4 + value_len])
    return mtype, op_id, key, value


def _env_int(name, default):
    raw = os.environ.get(name)
    return default if not raw else int(raw)


def _env_float(name, default):
    raw = os.environ.get(name)
    return default if not raw else float(raw)


class FleetOp:
    """A client-visible fleet operation and its outcome."""

    __slots__ = ("kind", "key", "value", "gateway_id", "done", "result",
                 "error", "acked", "attempts", "t_start", "t_end",
                 "callbacks")

    def __init__(self, kind, key, value, gateway_id):
        self.kind = kind
        self.key = key
        self.value = value
        self.gateway_id = gateway_id
        self.done = False
        self.result = None
        self.error = None
        self.acked = False
        self.attempts = 0
        self.t_start = None
        self.t_end = None
        self.callbacks = []

    @property
    def latency_cycles(self):
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    def add_done_callback(self, fn):
        if self.done:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _settle(self):
        self.done = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self):
        state = "done" if self.done else "pending"
        return "<FleetOp %s %r %s>" % (self.kind, self.key, state)


class FleetStepper:
    """Round-robins ``Environment.step`` across live nodes (see module
    docstring for the determinism rule it enforces)."""

    def __init__(self, fleet, quantum):
        self.fleet = fleet
        self.quantum = quantum
        self.horizon = 0
        self.rounds = 0
        self.events = 0

    def step_round(self):
        self.horizon += self.quantum
        executed = 0
        for node in self.fleet.nodes:
            if not node.alive:
                continue
            budget = self.horizon - node.env.now
            if budget > 0:
                executed += node.env.step(max_cycles=budget).executed
        if self.fleet.gfd is not None:
            self.fleet.gfd.tick(self.horizon)
        self.rounds += 1
        self.events += executed
        return executed

    def run_until(self, predicate, max_rounds=200_000):
        start = self.rounds
        while not predicate():
            if self.rounds - start >= max_rounds:
                raise RuntimeError(
                    "fleet made no progress in %d rounds" % max_rounds)
            self.step_round()

    def settle(self, rounds):
        for _ in range(rounds):
            self.step_round()


class Fleet:
    """N sharded, replicated Copier machines behind one virtual clock."""

    def __init__(self, n_nodes=None, system_kwargs=None, store_kwargs=None,
                 link_latency_cycles=None, link_bytes_per_cycle=None,
                 quantum=None, detectors=True, lfd_period_cycles=None,
                 gfd_timeout_cycles=None, reply_timeout_cycles=600_000,
                 max_attempts=8, vnodes=32):
        if n_nodes is None:
            n_nodes = _env_int("COPIER_FLEET_NODES", 3)
        if n_nodes < 1:
            raise ValueError("a fleet needs at least one node")
        link_latency = (link_latency_cycles if link_latency_cycles is not None
                        else _env_int("COPIER_FLEET_LINK_LATENCY", 20_000))
        link_bpc = (link_bytes_per_cycle if link_bytes_per_cycle is not None
                    else _env_float("COPIER_FLEET_LINK_BPC", 16.0))
        self.quantum = quantum if quantum is not None else min(link_latency,
                                                               20_000)
        if self.quantum > link_latency:
            raise ValueError(
                "stepping quantum (%d) must not exceed the link latency "
                "(%d): cross-node deliveries could land in a receiver's "
                "past and break determinism" % (self.quantum, link_latency))
        self.lfd_period = (lfd_period_cycles if lfd_period_cycles is not None
                           else _env_int("COPIER_FLEET_LFD_PERIOD", 100_000))
        self.gfd_timeout = (gfd_timeout_cycles
                            if gfd_timeout_cycles is not None
                            else _env_int("COPIER_FLEET_GFD_TIMEOUT", 400_000))
        self.reply_timeout = reply_timeout_cycles
        self.max_attempts = max_attempts

        system_kwargs = dict(system_kwargs or {})
        self.nodes = [FleetNode(i, lambda: System(**system_kwargs),
                                store_kwargs=store_kwargs)
                      for i in range(n_nodes)]
        self.interconnect = Interconnect(latency_cycles=link_latency,
                                         bytes_per_cycle=link_bpc)
        for node in self.nodes:
            self.interconnect.attach(node.node_id, node.env)
        self.ring = HashRing(range(n_nodes), vnodes=vnodes)

        for src in self.nodes:
            for dst in self.nodes:
                if src is dst:
                    continue
                channel = Channel(self.interconnect, src, dst)
                src.wire_peer(dst.node_id, out_channel=channel)
                dst.wire_peer(src.node_id, in_channel=channel)
                dst.spawn(self._channel_loop(dst, src.node_id, channel),
                          name="n%s-rx-%s" % (dst.node_id, src.node_id))

        self.detectors = detectors and n_nodes > 1
        self.gfd = None
        self.lfds = []
        if self.detectors:
            self.gfd = GlobalFaultDetector(self.ring, self.gfd_timeout,
                                           on_death=self._on_death)
            for node in self.nodes:
                lfd = LocalFaultDetector(node, self.interconnect, self.gfd,
                                         self.lfd_period, link_latency)
                self.lfds.append(lfd)
                node.spawn(lfd.loop(), name="n%s-lfd" % node.node_id)

        self.stepper = FleetStepper(self, self.quantum)
        self.promotions = []   # (view_id, dead node) in declaration order
        self._resync_procs = []
        self.kills = []        # node ids killed through kill_node
        self.ops_submitted = 0
        self.ops_acked = 0
        self.ops_failed = 0
        self.read_repairs = 0
        self._op_seq = 0

    # ------------------------------------------------------------ topology

    @property
    def live_nodes(self):
        return [node for node in self.nodes if node.alive]

    def node(self, node_id):
        return self.nodes[node_id]

    def kill_node(self, node_id):
        """Node-level fault: the machine drops off the interconnect.

        Detection stays organic — the GFD only learns through missed
        heartbeats, so promotion happens a detection-timeout later.
        """
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.kill()
        self.kills.append(node_id)

    def _on_death(self, node_id, view_id):
        self.promotions.append((view_id, node_id))
        for node in self.nodes:
            if node.alive:
                proc = node.spawn(self._resync(node),
                                  name="n%s-resync-v%d" % (node.node_id,
                                                           view_id))
                self._resync_procs.append(proc)

    @property
    def resyncs_active(self):
        """True while any post-promotion re-replication is still running.

        The chaos controller consults this to keep the storm within the
        replication factor: a second owner must not disappear before
        the previous membership change finished re-propagating."""
        self._resync_procs = [p for p in self._resync_procs if p.is_alive]
        return bool(self._resync_procs)

    # ----------------------------------------------------------- client API

    def submit(self, kind, key, value=None, gateway=None):
        if gateway is None:
            live = self.live_nodes
            if not live:
                raise FleetUnavailable("no live nodes")
            gateway = live[0].node_id
        node = self.nodes[gateway]
        if not node.alive:
            raise FleetUnavailable("gateway %r is dead" % (gateway,))
        op = FleetOp(kind, key, value, gateway)
        self.ops_submitted += 1
        node.spawn(self._gateway(op), name="n%s-op-%d" % (gateway,
                                                          self._next_op_id()))
        return op

    def set(self, key, value, gateway=None):
        return self.submit("set", key, value=value, gateway=gateway)

    def get(self, key, gateway=None):
        return self.submit("get", key, gateway=gateway)

    def run_ops(self, ops, max_rounds=200_000):
        """Step the fleet until every op in ``ops`` settles."""
        ops = list(ops)
        self.stepper.run_until(lambda: all(op.done for op in ops),
                               max_rounds=max_rounds)
        return ops

    # ------------------------------------------------------------- op flow

    def _next_op_id(self):
        self._op_seq += 1
        return self._op_seq

    def _finish(self, op, node, result, acked=False):
        op.result = result
        op.acked = acked
        op.t_end = node.env.now
        if acked:
            self.ops_acked += 1
        op._settle()

    def _fail(self, op, node, exc):
        op.error = exc
        op.t_end = node.env.now
        self.ops_failed += 1
        op._settle()

    def _backoff(self, attempt):
        yield Timeout(min(25_000 * attempt, 150_000))

    def _gateway(self, op):
        node = self.nodes[op.gateway_id]
        op.t_start = node.env.now
        try:
            while op.attempts < self.max_attempts:
                op.attempts += 1
                owners = self.ring.owners(op.key)
                if not owners:
                    raise FleetUnavailable("ring is empty")
                if owners[0] == node.node_id:
                    try:
                        if op.kind == "set":
                            yield from self._serve_set(node, op.key, op.value)
                            self._finish(op, node, True, acked=True)
                        else:
                            value = yield from self._serve_get(node, op.key)
                            self._finish(op, node, value)
                        return
                    except (NotOwner, FleetTimeout):
                        node.counters["local_retries"] += 1
                        yield from self._backoff(op.attempts)
                        continue
                reply = yield from self._request(
                    node, owners[0],
                    MSG_SET if op.kind == "set" else MSG_GET,
                    op.key, op.value if op.kind == "set" else b"")
                if reply is None:
                    node.counters["fwd_timeouts"] += 1
                    yield from self._backoff(op.attempts)
                    continue
                mtype, payload = reply
                if mtype == ACK_OK:
                    if op.kind == "set":
                        self._finish(op, node, True, acked=True)
                    else:
                        self._finish(op, node, payload)
                    return
                if mtype == ACK_MISS:
                    self._finish(op, node, None)
                    return
                node.counters["fwd_errors"] += 1
                yield from self._backoff(op.attempts)
            self._fail(op, node, FleetUnavailable(
                "%s %r gave up after %d attempts" % (op.kind, op.key,
                                                     op.attempts)))
        except (FleetError,) + _COPY_ERRORS as exc:
            self._fail(op, node, exc)

    # -------------------------------------------------------- server paths

    def _serve_set(self, node, key, value):
        """Commit + synchronously replicate to every other current owner.

        The owner set is re-read after replication: if a membership
        change landed mid-op the loop replicates against the new view
        before acknowledging, so an acked value always lives on the
        owners a subsequent GET will be routed to.
        """
        for _attempt in range(3):
            owners = self.ring.owners(key)
            if not owners or owners[0] != node.node_id:
                raise NotOwner("node %s is not primary for %r"
                               % (node.node_id, key))
            yield from node.store.set_op(key, value)
            node.counters["serve_sets"] += 1
            for target in owners[1:]:
                ok = yield from self._replicate(node, target, key, value)
                if not ok:
                    raise FleetTimeout("replica ack from %s for %r"
                                       % (target, key))
            if self.ring.owners(key) == owners:
                return
            node.counters["view_races"] += 1
        raise FleetTimeout("owner view kept changing for %r" % (key,))

    def _serve_get(self, node, key):
        owners = self.ring.owners(key)
        if not owners or owners[0] != node.node_id:
            raise NotOwner("node %s is not primary for %r"
                           % (node.node_id, key))
        value = yield from node.store.get_op(key)
        node.counters["serve_gets"] += 1
        if value is None and len(owners) > 1:
            # Freshly promoted primary racing resync: consult the backup.
            reply = yield from self._request(node, owners[1], MSG_GET_ANY,
                                             key, b"")
            if reply is not None and reply[0] == ACK_OK:
                value = reply[1]
                self.read_repairs += 1
                yield from node.store.set_op(key, value)
        return value

    def _replicate(self, node, target, key, value):
        if not self.nodes[target].alive:
            # Known-dead peer (the membership view just hasn't caught
            # up): the ack can never come, so don't burn a timeout.
            return False
        node.counters["repl_sent"] += 1
        reply = yield from self._request(node, target, MSG_REPL, key, value)
        return reply is not None and reply[0] == ACK_OK

    # -------------------------------------------------------- wire plumbing

    def _send_msg(self, node, dst_id, mtype, op_id, key, value=b""):
        message = encode_msg(mtype, op_id, key, value)
        lock = node.tx_locks[dst_id]
        channel = node.channels_out[dst_id]
        yield from lock.acquire()
        try:
            node.store.proc.write(node.tx_bufs[dst_id], message)
            ok = yield from channel.send(node.store.proc,
                                         node.tx_bufs[dst_id], len(message))
        finally:
            lock.release()
        node.counters["msgs_out"] += 1
        return ok

    def _request(self, node, dst_id, mtype, key, value):
        """Send a request and wait for its ack; ``None`` on timeout."""
        op_id = self._next_op_id()
        event = node.env.event()
        node.pending_replies[op_id] = event

        def expire():
            pending = node.pending_replies.pop(op_id, None)
            if pending is not None and not pending.triggered:
                pending.succeed(None)

        node.env.schedule(self.reply_timeout, expire)
        ok = yield from self._send_msg(node, dst_id, mtype, op_id, key, value)
        if not ok:
            # Dropped at the link: the expiry timer still owns the event.
            node.counters["msgs_dropped"] += 1
        reply = yield WaitEvent(event)
        return reply

    def _channel_loop(self, node, src_id, channel):
        proc = node.store.proc
        rx_va = node.rx_bufs[src_id]
        while True:
            got = yield from channel.recv(proc, rx_va, MAX_MSG)
            node.counters["msgs_in"] += 1
            mtype, op_id, key, value = decode_msg(bytes(proc.read(rx_va,
                                                                  got)))
            if mtype in _ACKS:
                event = node.pending_replies.pop(op_id, None)
                if event is not None and not event.triggered:
                    event.succeed((mtype, value))
            elif mtype == MSG_REPL:
                node.spawn(self._handle_repl(node, src_id, op_id, key, value),
                           name="n%s-repl-%d" % (node.node_id, op_id))
            else:
                node.spawn(self._handle_fwd(node, src_id, mtype, op_id, key,
                                            value),
                           name="n%s-fwd-%d" % (node.node_id, op_id))

    def _reply(self, node, dst_id, op_id, mtype, key, value=b""):
        yield from self._send_msg(node, dst_id, mtype, op_id, key, value)

    def _handle_fwd(self, node, src_id, mtype, op_id, key, value):
        try:
            if mtype == MSG_SET:
                yield from self._serve_set(node, key, value)
                reply = (ACK_OK, b"")
            elif mtype == MSG_GET:
                got = yield from self._serve_get(node, key)
                reply = (ACK_OK, got) if got is not None else (ACK_MISS, b"")
            elif mtype == MSG_GET_ANY:
                got = yield from node.store.get_op(key)
                reply = (ACK_OK, got) if got is not None else (ACK_MISS, b"")
            else:
                reply = (ACK_ERR, b"badmsg")
        except NotOwner:
            reply = (ACK_ERR, b"notowner")
        except (FleetError,) + _COPY_ERRORS:
            reply = (ACK_ERR, b"error")
        yield from self._reply(node, src_id, op_id, reply[0], key, reply[1])

    def _handle_repl(self, node, src_id, op_id, key, value):
        try:
            yield from node.store.set_op(key, value)
        except (FleetError,) + _COPY_ERRORS:
            yield from self._reply(node, src_id, op_id, ACK_ERR, key,
                                   b"error")
            return
        node.counters["repl_applied"] += 1
        yield from self._reply(node, src_id, op_id, ACK_OK, key)

    def _resync(self, node):
        """After a membership change, push primary-owned keys to their
        (possibly new) backups.  Replica application is idempotent, so
        re-pushing keys that were already current is harmless.

        Pushes retry (with backoff) until they land, the target dies,
        or the key moves: an acked value must not sit on a single owner
        just because a transient partition swallowed its resync — the
        storm controller holds further kills while this runs.
        """
        pushed = 0
        for key in sorted(node.store.db):
            while True:
                owners = self.ring.owners(key)
                if not owners or owners[0] != node.node_id:
                    break
                value = node.store.value_bytes(key)
                results = []
                for target in owners[1:]:
                    if not self.nodes[target].alive:
                        results.append(True)  # their death gets its own view
                        continue
                    results.append((yield from self._replicate(node, target,
                                                               key, value)))
                if all(results):
                    pushed += len(results)
                    break
                node.counters["resync_retries"] += 1
                yield Timeout(100_000)
        node.counters["resync_pushed"] += pushed

    # -------------------------------------------------------------- audits

    def leaked_pins(self):
        return sum(node.leaked_pins() for node in self.nodes)

    def shard_map(self, keys):
        return self.ring.shard_map(keys)

    def snapshot(self):
        return {
            "nodes": [node.snapshot() for node in self.nodes],
            "interconnect": self.interconnect.snapshot(),
            "gfd": self.gfd.snapshot() if self.gfd is not None else None,
            "promotions": list(self.promotions),
            "kills": list(self.kills),
            "rounds": self.stepper.rounds,
            "horizon": self.stepper.horizon,
            "ops": {"submitted": self.ops_submitted,
                    "acked": self.ops_acked,
                    "failed": self.ops_failed,
                    "read_repairs": self.read_repairs},
        }
