"""The fleet composition root: N machines, one deterministic clock.

Stepping model (conservative parallel discrete-event simulation): every
node owns an independent :class:`~repro.sim.engine.Environment`; the
:class:`FleetStepper` advances them round-robin, each round pushing
every live node to a common horizon ``rounds * quantum`` with
``env.step(max_cycles=...)``.  Determinism requires exactly one rule:
**the quantum never exceeds the smallest interconnect latency** (data
or control).  Then any cross-node message computed against the
sender's clock arrives strictly in the receiver's future regardless of
the order nodes step within a round, so the fleet behaves as one
machine with a single virtual clock.  The GFD ticks at each horizon,
after all nodes — membership changes happen at deterministic times, in
sorted node order.

Data path: keys shard on the consistent-hash ring.  A gateway node
serves a key it owns locally, otherwise forwards over the per-pair
:class:`~repro.fleet.netpath.Channel`.  A SET is acknowledged only
after the primary has committed *and* every other current owner has
applied a synchronous replica — together with the re-check of the
owner set after replication and post-promotion resync, that is what
makes acknowledged writes survive any storm that leaves a current
owner standing.
"""

import os
import random

from repro.ckpt import format as ckpt_format
from repro.ckpt.errors import CheckpointError
from repro.copier.errors import AdmissionReject, CopyAborted, DeadlineMissed
from repro.fleet.errors import (FleetError, FleetTimeout, FleetUnavailable,
                                NotOwner, StoreFull)
from repro.fleet.gfd import GlobalFaultDetector
from repro.fleet.interconnect import (GFD_ENDPOINT, Interconnect,
                                      LinkFaultPlan)
from repro.fleet.lfd import LocalFaultDetector
from repro.fleet.netpath import MAX_MSG, Channel
from repro.fleet.node import FleetNode
from repro.fleet.sharding import HashRing
from repro.kernel.system import System
from repro.sim import Timeout, WaitEvent

# Message types on the inter-node wire.
MSG_SET = 1
MSG_GET = 2
MSG_GET_ANY = 3   # owner-check-free read (backup fallback / read repair)
MSG_REPL = 4
MSG_CKPT = 5      # checkpoint shipping: key = chunk offset, reply = chunk
ACK_OK = 16
ACK_MISS = 17
ACK_ERR = 18
_ACKS = (ACK_OK, ACK_MISS, ACK_ERR)

#: Checkpoint-shipping chunk size; headroom under MAX_MSG for the header.
CKPT_CHUNK = MAX_MSG - 4096

_COPY_ERRORS = (CopyAborted, DeadlineMissed, AdmissionReject)


def encode_msg(mtype, op_id, key, value=b""):
    if isinstance(key, str):
        key = key.encode()
    return (bytes([mtype]) + op_id.to_bytes(8, "little")
            + len(key).to_bytes(2, "little") + key
            + len(value).to_bytes(4, "little") + value)


def decode_msg(data):
    mtype = data[0]
    op_id = int.from_bytes(data[1:9], "little")
    key_len = int.from_bytes(data[9:11], "little")
    key = bytes(data[11:11 + key_len])
    pos = 11 + key_len
    value_len = int.from_bytes(data[pos:pos + 4], "little")
    value = bytes(data[pos + 4:pos + 4 + value_len])
    return mtype, op_id, key, value


def _pack_version(version):
    """In-payload version header for SET/REPL under the reliable
    transport.  The ``_wire_versions`` side-channel is swept by the RPC
    expiry timer, but a reliable frame can outlive its RPC and be
    delivered later — the version must ride *inside* the message so a
    zombie delivery still carries its (stale, discardable) version."""
    return version.to_bytes(8, "little")


def _unpack_version(value):
    return int.from_bytes(value[:8], "little"), value[8:]


def _env_int(name, default):
    raw = os.environ.get(name)
    return default if not raw else int(raw)


def _env_float(name, default):
    raw = os.environ.get(name)
    return default if not raw else float(raw)


class FleetOp:
    """A client-visible fleet operation and its outcome."""

    __slots__ = ("kind", "key", "value", "gateway_id", "done", "result",
                 "error", "acked", "attempts", "t_start", "t_end",
                 "callbacks", "version")

    def __init__(self, kind, key, value, gateway_id):
        self.kind = kind
        self.key = key
        self.value = value
        self.gateway_id = gateway_id
        self.version = None
        self.done = False
        self.result = None
        self.error = None
        self.acked = False
        self.attempts = 0
        self.t_start = None
        self.t_end = None
        self.callbacks = []

    @property
    def latency_cycles(self):
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    def add_done_callback(self, fn):
        if self.done:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _settle(self):
        self.done = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self):
        state = "done" if self.done else "pending"
        return "<FleetOp %s %r %s>" % (self.kind, self.key, state)


class FleetStepper:
    """Round-robins ``Environment.step`` across live nodes (see module
    docstring for the determinism rule it enforces)."""

    def __init__(self, fleet, quantum):
        self.fleet = fleet
        self.quantum = quantum
        self.horizon = 0
        self.rounds = 0
        self.events = 0

    def step_round(self):
        self.horizon += self.quantum
        executed = 0
        for node in self.fleet.nodes:
            if not node.alive:
                continue
            budget = self.horizon - node.env.now
            if budget > 0:
                executed += node.env.step(max_cycles=budget).executed
        if self.fleet.gfd is not None:
            self.fleet.gfd.tick(self.horizon)
        self.rounds += 1
        self.events += executed
        period = self.fleet.ckpt_period
        if period and self.rounds % period == 0:
            # Periodic durability point at the round boundary: each live
            # node snapshots its store to local disk (host-side work —
            # free in simulated cycles) and truncates its WAL.
            for node in self.fleet.nodes:
                if node.alive:
                    node.disk.take_checkpoint(node.store, node.versions)
        return executed

    def run_until(self, predicate, max_rounds=200_000):
        start = self.rounds
        while not predicate():
            if self.rounds - start >= max_rounds:
                raise RuntimeError(
                    "fleet made no progress in %d rounds" % max_rounds)
            self.step_round()

    def settle(self, rounds):
        for _ in range(rounds):
            self.step_round()


class Fleet:
    """N sharded, replicated Copier machines behind one virtual clock."""

    def __init__(self, n_nodes=None, system_kwargs=None, store_kwargs=None,
                 link_latency_cycles=None, link_bytes_per_cycle=None,
                 quantum=None, detectors=True, lfd_period_cycles=None,
                 gfd_timeout_cycles=None, reply_timeout_cycles=600_000,
                 max_attempts=8, vnodes=32, ckpt_period=None,
                 link_fault_plan=None, backoff_jitter_seed=0):
        if n_nodes is None:
            n_nodes = _env_int("COPIER_FLEET_NODES", 3)
        if n_nodes < 1:
            raise ValueError("a fleet needs at least one node")
        link_latency = (link_latency_cycles if link_latency_cycles is not None
                        else _env_int("COPIER_FLEET_LINK_LATENCY", 20_000))
        link_bpc = (link_bytes_per_cycle if link_bytes_per_cycle is not None
                    else _env_float("COPIER_FLEET_LINK_BPC", 16.0))
        self.quantum = quantum if quantum is not None else min(link_latency,
                                                               20_000)
        if self.quantum > link_latency:
            raise ValueError(
                "stepping quantum (%d) must not exceed the link latency "
                "(%d): cross-node deliveries could land in a receiver's "
                "past and break determinism" % (self.quantum, link_latency))
        self.lfd_period = (lfd_period_cycles if lfd_period_cycles is not None
                           else _env_int("COPIER_FLEET_LFD_PERIOD", 100_000))
        self.gfd_timeout = (gfd_timeout_cycles
                            if gfd_timeout_cycles is not None
                            else _env_int("COPIER_FLEET_GFD_TIMEOUT", 400_000))
        self.reply_timeout = reply_timeout_cycles
        self.max_attempts = max_attempts
        self.ckpt_period = (ckpt_period if ckpt_period is not None
                            else _env_int("COPIER_CKPT_PERIOD", 256))
        # Seeded retry jitter: deterministic per fleet instance, but
        # concurrent ops draw different offsets so colliding retries
        # desynchronize instead of hammering in lock-step.
        self._backoff_rng = random.Random(
            repr(("fleet-backoff", backoff_jitter_seed)))

        system_kwargs = dict(system_kwargs or {})
        self.nodes = [FleetNode(i, lambda: System(**system_kwargs),
                                store_kwargs=store_kwargs)
                      for i in range(n_nodes)]
        if link_fault_plan is None:
            link_fault_plan = LinkFaultPlan.from_env()
        self.link_fault_plan = link_fault_plan
        self.interconnect = Interconnect(latency_cycles=link_latency,
                                         bytes_per_cycle=link_bpc,
                                         fault_plan=link_fault_plan)
        for node in self.nodes:
            self.interconnect.attach(node.node_id, node.env)
        self.ring = HashRing(range(n_nodes), vnodes=vnodes)

        # A lossy wire needs the reliable exactly-once transport; a
        # lossless one must stay byte-identical to the raw datagram
        # path, so reliability arms with (and only with) the plan.
        reliable = link_fault_plan is not None
        self.channels = []
        for src in self.nodes:
            for dst in self.nodes:
                if src is dst:
                    continue
                channel = Channel(self.interconnect, src, dst,
                                  reliable=reliable)
                self.channels.append(channel)
                src.wire_peer(dst.node_id, out_channel=channel)
                dst.wire_peer(src.node_id, in_channel=channel)
                dst.spawn(self._channel_loop(dst, src.node_id, channel),
                          name="n%s-rx-%s" % (dst.node_id, src.node_id))

        self.detectors = detectors and n_nodes > 1
        self.gfd = None
        self.lfds = []
        if self.detectors:
            self.gfd = GlobalFaultDetector(self.ring, self.gfd_timeout,
                                           on_death=self._on_death)
            for node in self.nodes:
                lfd = LocalFaultDetector(node, self.interconnect, self.gfd,
                                         self.lfd_period, link_latency)
                self.lfds.append(lfd)
                node.spawn(lfd.loop(), name="n%s-lfd" % node.node_id)

        self.stepper = FleetStepper(self, self.quantum)
        self.promotions = []   # (view_id, dead node) in declaration order
        self.restarts = []     # (view_id, node id) in rejoin order
        self._resync_procs = []
        self.kills = []        # node ids killed through kill_node
        self.ops_submitted = 0
        self.ops_acked = 0
        self.ops_failed = 0
        self.read_repairs = 0
        self._op_seq = 0
        # Commit versioning: one fleet-wide sequencer orders every
        # committed write; commit_versions is the control-plane digest
        # table of the newest committed version per key (shared state,
        # like the ring — see the module docstring on split-brain).
        # _wire_versions models the per-message version header: same
        # op-id on both ends, zero modeled wire bytes.
        self.commit_versions = {}
        self._version_seq = 0
        self._wire_versions = {}

    # ------------------------------------------------------------ topology

    @property
    def live_nodes(self):
        return [node for node in self.nodes if node.alive]

    def node(self, node_id):
        return self.nodes[node_id]

    def kill_node(self, node_id):
        """Node-level fault: the machine drops off the interconnect.

        Detection stays organic — the GFD only learns through missed
        heartbeats, so promotion happens a detection-timeout later.
        """
        node = self.nodes[node_id]
        if not node.alive:
            return
        node.kill()
        self.kills.append(node_id)

    def _on_death(self, node_id, view_id):
        self.promotions.append((view_id, node_id))
        for node in self.nodes:
            if node.alive:
                proc = node.spawn(self._resync(node),
                                  name="n%s-resync-v%d" % (node.node_id,
                                                           view_id))
                self._resync_procs.append(proc)

    @property
    def resyncs_active(self):
        """True while any post-promotion re-replication is still running.

        The chaos controller consults this to keep the storm within the
        replication factor: a second owner must not disappear before
        the previous membership change finished re-propagating."""
        self._resync_procs = [p for p in self._resync_procs if p.is_alive]
        return bool(self._resync_procs)

    @property
    def recovering_nodes(self):
        """Node ids restarted but not yet fully resynced."""
        return [node.node_id for node in self.nodes if node.recovering]

    def restart_node(self, node_id, from_checkpoint=True, peer_assist=False):
        """Bring a killed node back from its last durable state.

        The machine-local half (:meth:`FleetNode.restart`) boots a fresh
        ``System`` and replays the node's disk checkpoint + WAL tail;
        this method does the fleet half of the rejoin protocol:

        1. fast-forward the fresh clock to the stepper horizon (stepped,
           never assigned — boot events replay beneath it);
        2. re-home the rx sockets (:meth:`Channel.reopen`) and respawn
           the per-peer receive loops and the LFD on the new machine;
        3. rejoin the membership view — ``declare_alive`` restores the
           ring entry and bumps ``view_id`` if the node had been
           declared dead, and resets its heartbeat clock either way;
        4. optionally fetch a peer's checkpoint over the data plane
           (``peer_assist`` — the disk-loss path; the blob ships in
           ``MSG_CKPT`` chunks through the same NIC discipline as every
           other message);
        5. start the checkpoint-aware delta resync: peers push any key
           the rejoined node owns whose version is newer than what its
           checkpoint announced, and every node re-runs the ordinary
           primary→backup resync for the remapped shards.  Stale pushes
           from the rejoined node itself are version-discarded at apply.

        The node serves immediately but stays ``recovering`` until the
        resync fleet drains; recovering primaries answer reads through
        the backup-consult path whenever their local version lags the
        commit table, so a stale pre-crash value is never returned for
        a key that took writes while the node was down.
        """
        node = self.nodes[node_id]
        if node.alive:
            return
        node.restart(from_checkpoint=from_checkpoint)
        if self.stepper.horizon > node.env.now:
            node.env.step(max_cycles=self.stepper.horizon - node.env.now)
        self.interconnect.attach(node_id, node.env)
        for peer_id, channel in node.channels_in.items():
            channel.reopen()
            node.spawn(self._channel_loop(node, peer_id, channel),
                       name="n%s-rx-%s" % (node_id, peer_id))
        if self.link_fault_plan is not None:
            # Reliable channels whose *source* is the rebooted machine
            # lost their retransmit timers with the old env — re-arm
            # them so in-flight frames from before the crash still land.
            for channel in node.channels_out.values():
                channel.resume_tx()
        view = -1
        if self.gfd is not None:
            view = self.gfd.declare_alive(node_id, self.stepper.horizon)
            lfd = LocalFaultDetector(node, self.interconnect, self.gfd,
                                     self.lfd_period,
                                     self.interconnect.latency_cycles)
            for i, old in enumerate(self.lfds):
                if old.node is node:
                    self.lfds[i] = lfd
                    break
            node.spawn(lfd.loop(), name="n%s-lfd" % node_id)
        self.restarts.append((view, node_id))
        node.recovering = True
        started_at = node.env.now
        announced = dict(node.versions)
        procs = []
        if peer_assist:
            # A recovering peer may itself be mid-fetch with an empty
            # store — never elect one as donor.
            donors = sorted(n.node_id for n in self.live_nodes
                            if n is not node and not n.recovering)
            if donors:
                procs.append(node.spawn(
                    self._fetch_peer_checkpoint(node, donors[0]),
                    name="n%s-ckptfetch" % node_id))
        for peer in self.nodes:
            if not peer.alive:
                continue
            if peer is not node:
                procs.append(peer.spawn(
                    self._rejoin_resync(peer, node, announced),
                    name="n%s-rejoinsync-%s" % (peer.node_id, node_id)))
            procs.append(peer.spawn(
                self._resync(peer),
                name="n%s-resync-r%s" % (peer.node_id, node_id)))
        self._resync_procs.extend(procs)
        node.spawn(self._recovery_watch(node, procs, started_at),
                   name="n%s-recovery" % node_id)
        return node

    def _recovery_watch(self, node, procs, started_at):
        while any(p.is_alive for p in procs):
            yield Timeout(50_000)
        node.recovering = False
        node.counters["recoveries"] += 1
        node.counters["recovery_cycles"] = node.env.now - started_at

    def _rejoin_resync(self, node, target, announced):
        """Checkpoint-aware delta push to a freshly rejoined node.

        ``announced`` is the version map the target recovered from its
        own disk — anything it already has at that version is skipped
        (the delta), anything ``node`` holds newer is pushed, whether
        ``node`` is an owner or the orphaned interim primary whose
        shard just moved back.  Apply-side version checks discard any
        push that loses the race to a fresher one.
        """
        pushed = 0
        for key in sorted(node.store.db):
            attempt = 0
            while target.alive:
                owners = self.ring.owners(key)
                if target.node_id not in owners:
                    break
                version = node.versions.get(key, 0)
                if version <= announced.get(key, 0):
                    break
                ok = yield from self._replicate(node, target.node_id, key,
                                                node.store.value_bytes(key),
                                                version)
                if ok:
                    pushed += 1
                    break
                attempt += 1
                node.counters["rejoin_retries"] += 1
                yield Timeout(100_000)
        node.counters["rejoin_pushed"] += pushed

    def _fetch_peer_checkpoint(self, node, donor_id):
        """Disk-loss recovery: pull a whole-store checkpoint off a peer.

        The donor snapshots its store into a :mod:`repro.ckpt.format`
        envelope on the first chunk request and serves it in
        ``CKPT_CHUNK`` slices; every chunk rides the ordinary channel
        send/recv path, paying trap, skb, copy and wire costs like any
        data message.  A damaged blob is refused typed, never half
        applied.
        """
        parts = []
        offset = 0
        attempt = 0
        while True:
            reply = yield from self._request(node, donor_id, MSG_CKPT,
                                             offset.to_bytes(8, "little"),
                                             b"")
            if reply is None or reply[0] != ACK_OK:
                attempt += 1
                if (attempt > self.max_attempts
                        or not self.nodes[donor_id].alive):
                    node.counters["ckpt_fetch_failed"] += 1
                    return
                yield from self._backoff(attempt)
                parts = []
                offset = 0
                continue
            chunk = reply[1]
            parts.append(chunk)
            offset += len(chunk)
            if len(chunk) < CKPT_CHUNK:
                break
        blob = b"".join(parts)
        try:
            payload = ckpt_format.load_bytes(blob)
        except CheckpointError:
            node.counters["ckpt_fetch_corrupt"] += 1
            return
        applied = 0
        for key, (version, value) in sorted(payload["db"].items()):
            if version and version <= node.versions.get(key, 0):
                continue
            yield from self._commit(node, key, value, version)
            applied += 1
        node.counters["ckpt_fetch_keys"] = applied
        node.counters["ckpt_fetch_bytes"] = len(blob)

    # ----------------------------------------------------------- client API

    def submit(self, kind, key, value=None, gateway=None):
        if gateway is None:
            live = self.live_nodes
            if not live:
                raise FleetUnavailable("no live nodes")
            gateway = live[0].node_id
        node = self.nodes[gateway]
        if not node.alive:
            raise FleetUnavailable("gateway %r is dead" % (gateway,))
        op = FleetOp(kind, key, value, gateway)
        self.ops_submitted += 1
        node.spawn(self._gateway(op), name="n%s-op-%d" % (gateway,
                                                          self._next_op_id()))
        return op

    def set(self, key, value, gateway=None):
        return self.submit("set", key, value=value, gateway=gateway)

    def get(self, key, gateway=None):
        return self.submit("get", key, gateway=gateway)

    def run_ops(self, ops, max_rounds=200_000):
        """Step the fleet until every op in ``ops`` settles."""
        ops = list(ops)
        self.stepper.run_until(lambda: all(op.done for op in ops),
                               max_rounds=max_rounds)
        return ops

    # ------------------------------------------------------------- op flow

    def _next_op_id(self):
        self._op_seq += 1
        return self._op_seq

    def _next_version(self):
        self._version_seq += 1
        return self._version_seq

    def _commit(self, node, key, value, version):
        """Apply one versioned write on ``node``: store, version map,
        commit table, and the node's durable WAL (generator)."""
        yield from node.store.set_op(key, value)
        if version:
            node.versions[key] = version
            if version > self.commit_versions.get(key, 0):
                self.commit_versions[key] = version
        node.disk.log(version or 0, key, value)

    def _finish(self, op, node, result, acked=False):
        op.result = result
        op.acked = acked
        op.t_end = node.env.now
        if acked:
            self.ops_acked += 1
        op._settle()

    def _fail(self, op, node, exc):
        op.error = exc
        op.t_end = node.env.now
        self.ops_failed += 1
        op._settle()

    def _backoff(self, attempt):
        # Linear base plus a bounded seeded jitter (under one stepping
        # quantum): two ops that failed in the same round otherwise
        # retry in lock-step forever, re-colliding on every attempt.
        base = min(25_000 * attempt, 150_000)
        yield Timeout(base + self._backoff_rng.randrange(self.quantum))

    def _gateway(self, op):
        node = self.nodes[op.gateway_id]
        op.t_start = node.env.now
        if op.kind == "set" and self.link_fault_plan is not None:
            # With the reliable transport armed, a forwarded SET can be
            # delivered arbitrarily late (retransmits outlive the RPC
            # timeout).  Its commit version is therefore allocated once
            # per *op* and shipped in the message, so a zombie delivery
            # of an already-superseded attempt is version-discarded at
            # the owner instead of stamped newest-ever.
            op.version = self._next_version()
        try:
            while op.attempts < self.max_attempts:
                op.attempts += 1
                owners = self.ring.owners(op.key)
                if not owners:
                    raise FleetUnavailable("ring is empty")
                if owners[0] == node.node_id:
                    try:
                        if op.kind == "set":
                            yield from self._serve_set(node, op.key, op.value,
                                                       version=op.version)
                            self._finish(op, node, True, acked=True)
                        else:
                            value = yield from self._serve_get(node, op.key)
                            self._finish(op, node, value)
                        return
                    except (NotOwner, FleetTimeout):
                        node.counters["local_retries"] += 1
                        yield from self._backoff(op.attempts)
                        continue
                if op.kind == "set":
                    wire_value = (op.value if op.version is None
                                  else _pack_version(op.version) + op.value)
                else:
                    wire_value = b""
                reply = yield from self._request(
                    node, owners[0],
                    MSG_SET if op.kind == "set" else MSG_GET,
                    op.key, wire_value)
                if reply is None:
                    node.counters["fwd_timeouts"] += 1
                    yield from self._backoff(op.attempts)
                    continue
                mtype, payload, _version = reply
                if mtype == ACK_OK:
                    if op.kind == "set":
                        self._finish(op, node, True, acked=True)
                    else:
                        self._finish(op, node, payload)
                    return
                if mtype == ACK_MISS:
                    self._finish(op, node, None)
                    return
                node.counters["fwd_errors"] += 1
                yield from self._backoff(op.attempts)
            self._fail(op, node, FleetUnavailable(
                "%s %r gave up after %d attempts" % (op.kind, op.key,
                                                     op.attempts)))
        except (FleetError,) + _COPY_ERRORS as exc:
            self._fail(op, node, exc)

    # -------------------------------------------------------- server paths

    def _serve_set(self, node, key, value, version=None):
        """Commit + synchronously replicate to every other current owner.

        The owner set is re-read after replication: if a membership
        change landed mid-op the loop replicates against the new view
        before acknowledging, so an acked value always lives on the
        owners a subsequent GET will be routed to.

        ``version`` is the op-scoped commit version under the reliable
        transport (allocated once at the gateway); a serve whose version
        the key has already moved past is a zombie — a late redelivery
        of an attempt the writer superseded long ago — and is discarded
        as a success, like any other stale-version apply.
        """
        for _attempt in range(3):
            owners = self.ring.owners(key)
            if not owners or owners[0] != node.node_id:
                raise NotOwner("node %s is not primary for %r"
                               % (node.node_id, key))
            if version is not None and node.versions.get(key, 0) > version:
                node.counters["set_stale_discarded"] += 1
                return
            commit_version = (version if version is not None
                              else self._next_version())
            yield from self._commit(node, key, value, commit_version)
            node.counters["serve_sets"] += 1
            for target in owners[1:]:
                ok = yield from self._replicate(node, target, key, value,
                                                commit_version)
                if not ok:
                    raise FleetTimeout("replica ack from %s for %r"
                                       % (target, key))
            if self.ring.owners(key) == owners:
                return
            node.counters["view_races"] += 1
        raise FleetTimeout("owner view kept changing for %r" % (key,))

    def _get_checked(self, node, key):
        """Local read, downgrading an integrity abort to a miss.

        A read whose copy path detects corruption (a poisoned frame
        under the store buffer, surfacing as :class:`CopyAborted` at
        csync) must not fail the GET outright: the caller treats the
        miss like any untrusted local copy and falls back to the
        backup via ``MSG_GET_ANY`` read-repair.
        """
        try:
            value = yield from node.store.get_op(key)
        except CopyAborted:
            node.counters["get_integrity_fallbacks"] += 1
            return None
        return value

    def _serve_get(self, node, key):
        owners = self.ring.owners(key)
        if not owners or owners[0] != node.node_id:
            raise NotOwner("node %s is not primary for %r"
                           % (node.node_id, key))
        value = yield from self._get_checked(node, key)
        read_version = node.versions.get(key, 0)
        node.counters["serve_gets"] += 1
        # Consult the backup when the local copy cannot be trusted:
        # a freshly promoted primary racing resync (miss), or a
        # recovering restarted primary whose checkpointed version lags
        # the commit table (stale — returning it would un-acknowledge a
        # write that landed while this node was down).
        stale = (node.recovering
                 and read_version < self.commit_versions.get(key, 0))
        if (value is None or stale) and len(owners) > 1:
            reply = yield from self._request(node, owners[1], MSG_GET_ANY,
                                             key, b"")
            if reply is not None and reply[0] == ACK_OK:
                version = reply[2]
                if value is None or (version or 0) > node.versions.get(key, 0):
                    value = reply[1]
                    self.read_repairs += 1
                    yield from self._commit(node, key, value, version or 0)
                    return value
            if node.versions.get(key, 0) > read_version:
                # A fresher commit (a rejoin push landing mid-consult)
                # raced us: the pre-consult bytes are stale, re-read.
                value = yield from self._get_checked(node, key)
        return value

    def _replicate(self, node, target, key, value, version=None):
        if not self.nodes[target].alive:
            # Known-dead peer (the membership view just hasn't caught
            # up): the ack can never come, so don't burn a timeout.
            return False
        node.counters["repl_sent"] += 1
        if self.link_fault_plan is not None:
            # In-payload version header: survives RPC expiry, so even a
            # zombie redelivery is version-checked at apply (the
            # side-channel header would have been swept by then).
            reply = yield from self._request(
                node, target, MSG_REPL, key,
                _pack_version(version or 0) + value)
        else:
            reply = yield from self._request(node, target, MSG_REPL, key,
                                             value, version=version)
        return reply is not None and reply[0] == ACK_OK

    # -------------------------------------------------------- wire plumbing

    def _send_msg(self, node, dst_id, mtype, op_id, key, value=b""):
        message = encode_msg(mtype, op_id, key, value)
        lock = node.tx_locks[dst_id]
        channel = node.channels_out[dst_id]
        yield from lock.acquire()
        try:
            node.store.proc.write(node.tx_bufs[dst_id], message)
            try:
                ok = yield from channel.send(node.store.proc,
                                             node.tx_bufs[dst_id],
                                             len(message))
            except CopyAborted:
                # Poisoned frame while marshalling into the kernel buffer:
                # nothing trustworthy reached the wire, so report the send
                # like a link drop — the RPC timeout/retry re-drives it.
                node.counters["tx_poisoned"] += 1
                ok = False
        finally:
            lock.release()
        node.counters["msgs_out"] += 1
        return ok

    def _request(self, node, dst_id, mtype, key, value, version=None):
        """Send a request and wait for its ack.

        Returns ``None`` on timeout, else ``(mtype, payload, version)``
        where ``version`` is the commit version the replier attached (or
        ``None``).  ``version=`` attaches a commit version to the
        *outgoing* request — the modeled per-message header that REPL
        carries (see ``_wire_versions``); the expiry timer sweeps the
        entry if the message never lands.
        """
        op_id = self._next_op_id()
        if version is not None:
            self._wire_versions[op_id] = version
        event = node.env.event()
        node.pending_replies[op_id] = event

        def expire():
            self._wire_versions.pop(op_id, None)
            pending = node.pending_replies.pop(op_id, None)
            if pending is not None and not pending.triggered:
                pending.succeed(None)

        node.env.schedule(self.reply_timeout, expire)
        ok = yield from self._send_msg(node, dst_id, mtype, op_id, key, value)
        if not ok:
            # Dropped at the link: the expiry timer still owns the event.
            node.counters["msgs_dropped"] += 1
        reply = yield WaitEvent(event)
        if reply is None:
            return None
        return reply + (self._wire_versions.pop(op_id, None),)

    def _channel_loop(self, node, src_id, channel):
        proc = node.store.proc
        rx_va = node.rx_bufs[src_id]
        while True:
            try:
                got = yield from channel.recv(proc, rx_va, MAX_MSG)
            except CopyAborted:
                # The copy landing the message in the rx buffer hit a
                # poisoned frame: the message is untrustworthy, so it is
                # treated exactly like a frame the wire lost — dropped
                # here, re-driven by the requester's RPC timeout/retry.
                node.counters["rx_poisoned"] += 1
                continue
            node.counters["msgs_in"] += 1
            mtype, op_id, key, value = decode_msg(bytes(proc.read(rx_va,
                                                                  got)))
            if mtype in _ACKS:
                event = node.pending_replies.pop(op_id, None)
                if event is not None and not event.triggered:
                    event.succeed((mtype, value))
                else:
                    # Stale ack (request already expired): drop any
                    # version header the replier attached for it.
                    self._wire_versions.pop(op_id, None)
            elif mtype == MSG_REPL:
                node.spawn(self._handle_repl(node, src_id, op_id, key, value),
                           name="n%s-repl-%d" % (node.node_id, op_id))
            else:
                node.spawn(self._handle_fwd(node, src_id, mtype, op_id, key,
                                            value),
                           name="n%s-fwd-%d" % (node.node_id, op_id))

    def _reply(self, node, dst_id, op_id, mtype, key, value=b""):
        yield from self._send_msg(node, dst_id, mtype, op_id, key, value)

    def _handle_fwd(self, node, src_id, mtype, op_id, key, value):
        try:
            if mtype == MSG_SET:
                version = None
                if self.link_fault_plan is not None:
                    version, value = _unpack_version(value)
                yield from self._serve_set(node, key, value, version=version)
                reply = (ACK_OK, b"")
            elif mtype == MSG_GET:
                got = yield from self._serve_get(node, key)
                reply = (ACK_OK, got) if got is not None else (ACK_MISS, b"")
            elif mtype == MSG_GET_ANY:
                got = yield from self._get_checked(node, key)
                if got is not None:
                    # Attach the local commit version so the consulting
                    # primary can judge freshness against its own copy.
                    self._wire_versions[op_id] = node.versions.get(key, 0)
                    reply = (ACK_OK, got)
                else:
                    reply = (ACK_MISS, b"")
            elif mtype == MSG_CKPT:
                reply = (ACK_OK, self._ckpt_chunk(node, src_id, key))
            else:
                reply = (ACK_ERR, b"badmsg")
        except NotOwner:
            reply = (ACK_ERR, b"notowner")
        except (FleetError,) + _COPY_ERRORS:
            reply = (ACK_ERR, b"error")
        yield from self._reply(node, src_id, op_id, reply[0], key, reply[1])

    def _ckpt_chunk(self, node, src_id, key):
        """Serve one checkpoint-shipping chunk (key = offset, LE64).

        Offset 0 snapshots the whole store into a fresh envelope cached
        per requester, so a multi-chunk transfer reads one consistent
        image even while the donor keeps committing.
        """
        offset = int.from_bytes(key[:8], "little")
        if offset == 0:
            db = {k: (node.versions.get(k, 0), node.store.value_bytes(k))
                  for k in sorted(node.store.db)}
            node.ckpt_ship[src_id] = ckpt_format.dump_bytes(
                {"node": node.node_id, "lsn": node.disk.lsn, "db": db})
            node.counters["ckpt_shipped"] += 1
        blob = node.ckpt_ship.get(src_id, b"")
        chunk = blob[offset:offset + CKPT_CHUNK]
        if offset + len(chunk) >= len(blob):
            node.ckpt_ship.pop(src_id, None)
        return chunk

    def _handle_repl(self, node, src_id, op_id, key, value):
        if self.link_fault_plan is not None:
            version, value = _unpack_version(value)
            version = version or None  # 0 marks an unversioned push
        else:
            version = self._wire_versions.pop(op_id, None)
        if version is not None and version < node.versions.get(key, 0):
            # Stale push (a rejoined node re-offering pre-crash data
            # that a newer commit superseded): the wire cost is already
            # paid — discard the apply, ack so the pusher moves on.
            node.counters["repl_stale_discarded"] += 1
            yield from self._reply(node, src_id, op_id, ACK_OK, key)
            return
        try:
            yield from self._commit(node, key, value, version or 0)
        except (FleetError,) + _COPY_ERRORS:
            yield from self._reply(node, src_id, op_id, ACK_ERR, key,
                                   b"error")
            return
        node.counters["repl_applied"] += 1
        yield from self._reply(node, src_id, op_id, ACK_OK, key)

    def _resync(self, node):
        """After a membership change, push primary-owned keys to their
        (possibly new) backups.  Replica application is idempotent, so
        re-pushing keys that were already current is harmless.

        Pushes retry (with backoff) until they land, the target dies,
        or the key moves: an acked value must not sit on a single owner
        just because a transient partition swallowed its resync — the
        storm controller holds further kills while this runs.
        """
        pushed = 0
        for key in sorted(node.store.db):
            while True:
                owners = self.ring.owners(key)
                if not owners or owners[0] != node.node_id:
                    break
                value = node.store.value_bytes(key)
                version = node.versions.get(key)
                results = []
                for target in owners[1:]:
                    if not self.nodes[target].alive:
                        results.append(True)  # their death gets its own view
                        continue
                    results.append((yield from self._replicate(
                        node, target, key, value, version)))
                if all(results):
                    pushed += len(results)
                    break
                node.counters["resync_retries"] += 1
                yield Timeout(100_000)
        node.counters["resync_pushed"] += pushed

    # -------------------------------------------------------------- audits

    def leaked_pins(self):
        return sum(node.leaked_pins() for node in self.nodes)

    def shard_map(self, keys):
        return self.ring.shard_map(keys)

    def netpath_stats(self):
        """Aggregate reliable-transport counters across every channel."""
        totals = {}
        for channel in self.channels:
            for field, count in channel.transport_stats().items():
                totals[field] = totals.get(field, 0) + count
        return totals

    def snapshot(self):
        snap = {
            "nodes": [node.snapshot() for node in self.nodes],
            "interconnect": self.interconnect.snapshot(),
            "gfd": self.gfd.snapshot() if self.gfd is not None else None,
            "promotions": list(self.promotions),
            "kills": list(self.kills),
            "restarts": list(self.restarts),
            "rounds": self.stepper.rounds,
            "horizon": self.stepper.horizon,
            "ops": {"submitted": self.ops_submitted,
                    "acked": self.ops_acked,
                    "failed": self.ops_failed,
                    "read_repairs": self.read_repairs},
        }
        if self.link_fault_plan is not None:
            # Armed-only so lossless snapshots stay byte-identical to
            # the pre-reliable shape pinned by differential suites.
            snap["netpath"] = self.netpath_stats()
        return snap
