"""Multi-node Copier fleet: sharded simulated machines behind one clock.

Each :class:`~repro.fleet.node.FleetNode` is a full simulated machine
(its own :class:`~repro.kernel.system.System` with a Copier service);
the :class:`~repro.fleet.fleet.Fleet` joins N of them with a modeled
interconnect and round-robins ``Environment.step`` across the nodes so
the whole fleet shares one deterministic virtual clock.  Keys shard
across nodes on a consistent-hash ring, writes replicate primary →
backup before they are acknowledged, and a heartbeat lfd/gfd pair
promotes the backup when a node dies.
"""

from repro.fleet.errors import (FleetError, FleetTimeout, FleetUnavailable,
                                NotOwner, StoreFull)
from repro.fleet.fleet import Fleet, FleetOp, FleetStepper
from repro.fleet.gfd import GlobalFaultDetector
from repro.fleet.interconnect import Interconnect
from repro.fleet.lfd import LocalFaultDetector
from repro.fleet.node import FleetNode
from repro.fleet.sharding import HashRing
from repro.fleet.store import KVStore

__all__ = [
    "Fleet", "FleetError", "FleetNode", "FleetOp", "FleetStepper",
    "FleetTimeout", "FleetUnavailable", "GlobalFaultDetector", "HashRing",
    "Interconnect", "KVStore", "LocalFaultDetector", "NotOwner", "StoreFull",
]
