"""Global fault detector: membership view and backup promotion.

The GFD is control-plane state shared by the whole fleet (nodes
consult the membership-bearing hash ring directly), so only failure
*detection* is delayed — there is no per-node view divergence and
therefore no split-brain.  It is ticked by the fleet stepper at every
round horizon: heartbeats whose modeled arrival time has passed update
``last_beat``, then any member silent for longer than
``timeout_cycles`` is declared dead, removed from the ring (bumping
``view_id``) and reported through ``on_death`` so the fleet can start
re-replication.  Declarations happen in sorted node order at a
deterministic virtual time, which is what makes two fixed-seed runs
produce identical promotion sequences.
"""


class GlobalFaultDetector:
    def __init__(self, ring, timeout_cycles, on_death=None):
        self.ring = ring
        self.timeout_cycles = timeout_cycles
        self.on_death = on_death
        self.view_id = 0
        self.alive = set(ring.nodes)
        self.last_beat = {node_id: 0 for node_id in self.alive}
        self.beats_seen = 0
        self.deaths = []  # (view_id, node_id, cause, declared_at)
        self.rebirths = []  # (view_id, node_id, declared_at)
        self._inbox = []

    def heartbeat(self, node_id, seq, arrival):
        self._inbox.append((arrival, node_id, seq))

    def tick(self, now):
        """Ingest delivered heartbeats, then sweep for silent members."""
        pending = []
        for beat in self._inbox:
            arrival, node_id, _seq = beat
            if arrival <= now:
                if node_id in self.alive:
                    self.last_beat[node_id] = max(self.last_beat[node_id],
                                                  arrival)
                    self.beats_seen += 1
            else:
                pending.append(beat)
        self._inbox = pending
        for node_id in sorted(self.alive, key=repr):
            if now - self.last_beat[node_id] > self.timeout_cycles:
                self.declare_dead(node_id, "heartbeat-timeout", now)

    def declare_dead(self, node_id, cause, now):
        if node_id not in self.alive:
            return
        self.alive.discard(node_id)
        self.ring.remove_node(node_id)
        self.view_id += 1
        self.deaths.append((self.view_id, node_id, cause, now))
        if self.on_death is not None:
            self.on_death(node_id, self.view_id)

    def declare_alive(self, node_id, now):
        """A restarted node rejoins the membership view.

        If it was declared dead the ring gets it back and the view bumps
        (promoting it into its old shards); if it restarted before the
        timeout fired it never left, so only its heartbeat clock resets
        — either way the fresh ``last_beat`` stops an instant re-declare.
        """
        self.last_beat[node_id] = now
        if node_id in self.alive:
            return self.view_id
        self.alive.add(node_id)
        self.ring.add_node(node_id)
        self.view_id += 1
        self.rebirths.append((self.view_id, node_id, now))
        return self.view_id

    def snapshot(self):
        return {
            "view_id": self.view_id,
            "alive": sorted(self.alive, key=repr),
            "beats_seen": self.beats_seen,
            "deaths": list(self.deaths),
            "rebirths": list(self.rebirths),
        }
