"""Cross-node message paths built on the kernel network stack.

A :class:`Channel` is a directed ``src → dst`` datagram path.  The send
side mirrors :func:`repro.kernel.net.send_body`'s copier mode — trap,
skb alloc, ``k_amemcpy`` user→kbuf overlapped with protocol work, then
a driver-side ``csync`` right before the wire — but hands the bytes to
the :class:`~repro.fleet.interconnect.Interconnect` instead of a local
peer socket.  The receive side *is* :func:`repro.kernel.net.recv` in
copier mode against a real :class:`~repro.kernel.net.Socket` on the
destination system, so skb ownership, kill-safety and KFUNC buffer
reclaim all come from the proven single-node path.

One skb is one message: the fleet's RPC layer never needs stream
reassembly, matching the datagram semantics ``recv`` already has.
"""

from collections import deque

from repro.copier.task import Region
from repro.kernel.net import SKB, Socket, recv
from repro.sim import Compute, WaitEvent

#: Per-message ceiling; channel rx/tx buffers are sized to this.
MAX_MSG = 64 * 1024


class SimLock:
    """A FIFO mutex for simulated processes sharing a buffer.

    ``yield from lock.acquire()`` then ``lock.release()`` in a
    ``finally``.  Release hands ownership straight to the next waiter,
    so wake order (and therefore buffer-use order) is deterministic.
    A waiter killed while queued would swallow the handoff — fleet
    callers only kill whole nodes, never individual ops, so the lock
    dies with its environment rather than wedging a live one.
    """

    __slots__ = ("env", "_held", "_waiters")

    def __init__(self, env):
        self.env = env
        self._held = False
        self._waiters = deque()

    def acquire(self):
        if not self._held:
            self._held = True
            return
        event = self.env.event()
        self._waiters.append(event)
        yield WaitEvent(event)

    def release(self):
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._held = False


class Channel:
    """A directed copy-offloaded message path between two fleet nodes."""

    def __init__(self, interconnect, src_node, dst_node):
        self.interconnect = interconnect
        self.src = src_node
        self.dst = dst_node
        self.rx_sock = Socket(dst_node.system,
                              name="ch-%s-%s" % (src_node.node_id,
                                                 dst_node.node_id))
        self.sent = 0
        self.delivered = 0

    def send(self, proc, va, nbytes, client=None):
        """Transmit ``nbytes`` at ``va``; returns ``False`` on partition.

        The caller may reuse the buffer as soon as this returns: the
        kbuf copy is csynced before the payload snapshot, exactly like
        the NIC-TX sync point in ``send_body``.
        """
        system = self.src.system
        params = system.params
        client = client if client is not None else proc.client
        yield from proc.trap(client=client)
        yield Compute(params.skb_alloc_cycles, tag="syscall")
        kbuf = system.alloc_kernel_buffer(nbytes)
        try:
            if (client is not None
                    and nbytes >= params.copier_kernel_min_bytes):
                yield from client.k_amemcpy(
                    Region(proc.aspace, va, nbytes),
                    Region(system.kernel_as, kbuf, nbytes))
                yield Compute(params.proto_cycles, tag="syscall")
                yield from client.csync_region(
                    Region(system.kernel_as, kbuf, nbytes), queue_kind="k")
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, va, system.kernel_as, kbuf, nbytes,
                    engine="erms")
                yield Compute(params.proto_cycles, tag="syscall")
            payload = bytes(system.kernel_as.read(kbuf, nbytes))
        finally:
            system.free_kernel_buffer(kbuf, nbytes)
        ok = self.interconnect.transmit(self.src.node_id, self.dst.node_id,
                                        payload, self._deliver)
        if ok:
            self.sent += 1
        yield from proc.sysret(client=client)
        return ok

    def _deliver(self, payload):
        """Wire arrival on the destination node (dst env context)."""
        if not self.dst.alive or self.rx_sock.closed:
            return  # dropped on the floor: no kbuf was allocated yet
        system = self.dst.system
        kbuf = system.alloc_kernel_buffer(len(payload))
        system.kernel_as.write(kbuf, payload)
        self.rx_sock.deliver(SKB(kbuf, len(payload)))
        self.delivered += 1

    def recv(self, proc, va, nbytes, client=None):
        """Receive one message into ``va`` and csync it ready for parse."""
        got = yield from recv(self.dst.system, proc, self.rx_sock, va,
                              nbytes, mode="copier", client=client)
        client = client if client is not None else proc.client
        yield from client.csync(va, got)
        return got

    def close(self):
        self.rx_sock.close()

    def reopen(self):
        """Re-home the rx socket on the destination's (new) system.

        Part of node restart: the old socket died with the old machine;
        messages delivered between close and reopen were dropped on the
        floor, exactly like frames arriving at a rebooting NIC.
        """
        self.rx_sock = Socket(self.dst.system,
                              name="ch-%s-%s" % (self.src.node_id,
                                                 self.dst.node_id))
