"""Cross-node message paths built on the kernel network stack.

A :class:`Channel` is a directed ``src → dst`` datagram path.  The send
side mirrors :func:`repro.kernel.net.send_body`'s copier mode — trap,
skb alloc, ``k_amemcpy`` user→kbuf overlapped with protocol work, then
a driver-side ``csync`` right before the wire — but hands the bytes to
the :class:`~repro.fleet.interconnect.Interconnect` instead of a local
peer socket.  The receive side *is* :func:`repro.kernel.net.recv` in
copier mode against a real :class:`~repro.kernel.net.Socket` on the
destination system, so skb ownership, kill-safety and KFUNC buffer
reclaim all come from the proven single-node path.

One skb is one message: the fleet's RPC layer never needs stream
reassembly, matching the datagram semantics ``recv`` already has.

When the interconnect is lossy (a :class:`~repro.fleet.interconnect.
LinkFaultPlan` is armed) the channel layers a reliable, exactly-once
transport over the raw datagram path, shaped like the classic
reliable-RPC stack:

* every DATA frame carries a 13-byte header — type byte, little-endian
  64-bit sequence number, and a CRC32 over header+payload — so a
  corrupted frame (wire bit flip, including in the header) is detected
  and dropped at the receiver, never delivered;
* the sender keeps unacked frames and retransmits on a timer with the
  same exponential-backoff discipline the fleet's RPC retries use
  (base RTO of a few link RTTs, doubling, capped).  A frame is *never*
  abandoned while its channel lives: dropping one would leave a
  permanent gap at the receiver's next-expected cursor and wedge
  everything behind it.  While the destination is down the timer keeps
  the frame and merely probes again later — a restarted receiver
  resumes the stream exactly where it left off;
* the receiver acks cumulatively (an ACK for ``n`` means "everything
  below ``n`` arrived"), dedups via the next-expected sequence number
  plus a bounded out-of-order hold window, and delivers payloads
  upward in order, exactly once — duplicated or reordered wire frames
  never double-apply or jump the queue.

With no plan armed none of this exists on the wire: frames are raw
payloads and the transmit path is byte-identical to the lossless model.
"""

import zlib
from collections import deque

from repro.copier.task import Region
from repro.kernel.net import SKB, Socket, recv
from repro.sim import Compute, WaitEvent

#: Per-message ceiling; channel rx/tx buffers are sized to this.
MAX_MSG = 64 * 1024

#: Reliable-mode framing: type + seq (LE64) + crc32 (LE32).
FRAME_HDR = 13
_DATA = b"D"
_ACK = b"A"

#: Out-of-order frames held at the receiver awaiting the gap fill.
RX_WINDOW = 64


def _frame(ftype, seq, payload):
    head = ftype + seq.to_bytes(8, "little")
    crc = zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF
    return head + crc.to_bytes(4, "little") + payload


def _parse_frame(frame):
    """Return ``(ftype, seq, payload)`` or ``None`` on a CRC mismatch."""
    if len(frame) < FRAME_HDR:
        return None
    crc = zlib.crc32(frame[FRAME_HDR:], zlib.crc32(frame[:9])) & 0xFFFFFFFF
    if crc != int.from_bytes(frame[9:FRAME_HDR], "little"):
        return None
    return (frame[:1], int.from_bytes(frame[1:9], "little"),
            frame[FRAME_HDR:])


class SimLock:
    """A FIFO mutex for simulated processes sharing a buffer.

    ``yield from lock.acquire()`` then ``lock.release()`` in a
    ``finally``.  Release hands ownership straight to the next waiter,
    so wake order (and therefore buffer-use order) is deterministic.
    A waiter killed while queued would swallow the handoff — fleet
    callers only kill whole nodes, never individual ops, so the lock
    dies with its environment rather than wedging a live one.
    """

    __slots__ = ("env", "_held", "_waiters")

    def __init__(self, env):
        self.env = env
        self._held = False
        self._waiters = deque()

    def acquire(self):
        if not self._held:
            self._held = True
            return
        event = self.env.event()
        self._waiters.append(event)
        yield WaitEvent(event)

    def release(self):
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._held = False


class Channel:
    """A directed copy-offloaded message path between two fleet nodes."""

    def __init__(self, interconnect, src_node, dst_node, reliable=False):
        self.interconnect = interconnect
        self.src = src_node
        self.dst = dst_node
        self.rx_sock = Socket(dst_node.system,
                              name="ch-%s-%s" % (src_node.node_id,
                                                 dst_node.node_id))
        self.sent = 0
        self.delivered = 0
        self.reliable = reliable
        # Sender state: next sequence number and the unacked frame map
        # (seq -> [frame, attempts]); timers live on the source env.
        self._seq_next = 0
        self._unacked = {}
        self._rto = 5 * interconnect.latency_cycles
        # Receiver state: next expected sequence and the bounded
        # out-of-order hold window (seq -> payload).
        self._rx_expected = 0
        self._rx_hold = {}
        # Reliable-transport counters (all zero when not reliable).
        self.frames_sent = 0
        self.retransmits = 0
        self.acks_tx = 0
        self.acks_rx = 0
        self.crc_dropped = 0
        self.dups_deduped = 0
        self.reorders_held = 0

    def send(self, proc, va, nbytes, client=None):
        """Transmit ``nbytes`` at ``va``; returns ``False`` on partition.

        The caller may reuse the buffer as soon as this returns: the
        kbuf copy is csynced before the payload snapshot, exactly like
        the NIC-TX sync point in ``send_body``.
        """
        system = self.src.system
        params = system.params
        client = client if client is not None else proc.client
        yield from proc.trap(client=client)
        yield Compute(params.skb_alloc_cycles, tag="syscall")
        kbuf = system.alloc_kernel_buffer(nbytes)
        try:
            if (client is not None
                    and nbytes >= params.copier_kernel_min_bytes):
                yield from client.k_amemcpy(
                    Region(proc.aspace, va, nbytes),
                    Region(system.kernel_as, kbuf, nbytes))
                yield Compute(params.proto_cycles, tag="syscall")
                yield from client.csync_region(
                    Region(system.kernel_as, kbuf, nbytes), queue_kind="k")
            else:
                yield from system.sync_copy(
                    proc, proc.aspace, va, system.kernel_as, kbuf, nbytes,
                    engine="erms")
                yield Compute(params.proto_cycles, tag="syscall")
            payload = bytes(system.kernel_as.read(kbuf, nbytes))
        finally:
            system.free_kernel_buffer(kbuf, nbytes)
        if self.reliable:
            ok = self._send_reliable(payload)
        else:
            ok = self.interconnect.transmit(
                self.src.node_id, self.dst.node_id, payload, self._deliver)
        if ok:
            self.sent += 1
        yield from proc.sysret(client=client)
        return ok

    # ---------------------------------------------------- reliable sender

    def _send_reliable(self, payload):
        """Frame, transmit, and register ``payload`` for retransmission."""
        seq = self._seq_next
        self._seq_next += 1
        frame = _frame(_DATA, seq, payload)
        self._unacked[seq] = [frame, 0]
        ok = self.interconnect.transmit(self.src.node_id, self.dst.node_id,
                                        frame, self._on_frame)
        self.frames_sent += 1
        self.src.env.schedule(self._rto,
                              lambda: self._retransmit(seq, self._rto))
        return ok

    def _retransmit(self, seq, prev_delay):
        """Timer fire on the source env: resend ``seq`` if still unacked.

        The frame is never abandoned — an acked-then-dropped gap would
        wedge the receiver's in-order cursor forever.  While the
        destination is down the timer holds the frame without touching
        the wire and probes again after the backoff.
        """
        entry = self._unacked.get(seq)
        if entry is None or not self.src.alive:
            return
        delay = min(prev_delay * 2, 8 * self._rto)
        if self.dst.alive:
            entry[1] += 1
            if self.interconnect.transmit(self.src.node_id,
                                          self.dst.node_id,
                                          entry[0], self._on_frame):
                self.retransmits += 1
        self.src.env.schedule(delay, lambda: self._retransmit(seq, delay))

    def resume_tx(self):
        """Re-arm retransmit timers after the *source* node restarted.

        The old machine's timers died with its environment, but the
        channel (and its unacked frames) outlives the crash — without
        this, any frame in flight at the kill would never be resent and
        the receiver's in-order stream would wedge on the gap.
        """
        for seq in list(self._unacked):
            self.src.env.schedule(self._rto,
                                  lambda s=seq: self._retransmit(s,
                                                                 self._rto))

    def _on_ack(self, frame):
        """ACK arrival on the *source* node (src env context)."""
        parsed = _parse_frame(frame)
        if parsed is None:
            self.crc_dropped += 1
            return
        _ftype, acked_below, _payload = parsed
        if not self.src.alive:
            return
        self.acks_rx += 1
        for seq in [s for s in self._unacked if s < acked_below]:
            del self._unacked[seq]

    # -------------------------------------------------- reliable receiver

    def _on_frame(self, frame):
        """DATA frame arrival on the destination node (dst env context)."""
        parsed = _parse_frame(frame)
        if parsed is None:
            self.crc_dropped += 1
            return  # no ack: the sender's timer retransmits
        _ftype, seq, payload = parsed
        if not self.dst.alive or self.rx_sock.closed:
            return  # rebooting NIC: no ack, sender retries
        if seq < self._rx_expected or seq in self._rx_hold:
            self.dups_deduped += 1
            self._send_ack()  # re-ack so the sender stops resending
            return
        if seq - self._rx_expected >= RX_WINDOW:
            return  # beyond the hold window; retransmit will refit
        if seq != self._rx_expected:
            self.reorders_held += 1
        self._rx_hold[seq] = payload
        while self._rx_expected in self._rx_hold:
            ready = self._rx_hold.pop(self._rx_expected)
            self._rx_expected += 1
            self._deliver(ready)
        self._send_ack()

    def _send_ack(self):
        """Cumulative ack: everything below ``_rx_expected`` arrived."""
        ack = _frame(_ACK, self._rx_expected, b"")
        if self.interconnect.transmit(self.dst.node_id, self.src.node_id,
                                      ack, self._on_ack):
            self.acks_tx += 1

    # ------------------------------------------------------------ receive

    def _deliver(self, payload):
        """In-order arrival on the destination node (dst env context)."""
        if not self.dst.alive or self.rx_sock.closed:
            return  # dropped on the floor: no kbuf was allocated yet
        system = self.dst.system
        kbuf = system.alloc_kernel_buffer(len(payload))
        system.kernel_as.write(kbuf, payload)
        self.rx_sock.deliver(SKB(kbuf, len(payload)))
        self.delivered += 1

    def transport_stats(self):
        """Reliable-transport counters (all zero when not reliable)."""
        return {
            "frames_sent": self.frames_sent,
            "retransmits": self.retransmits,
            "acks_tx": self.acks_tx,
            "acks_rx": self.acks_rx,
            "crc_dropped": self.crc_dropped,
            "dups_deduped": self.dups_deduped,
            "reorders_held": self.reorders_held,
            "unacked": len(self._unacked),
        }

    def recv(self, proc, va, nbytes, client=None):
        """Receive one message into ``va`` and csync it ready for parse."""
        got = yield from recv(self.dst.system, proc, self.rx_sock, va,
                              nbytes, mode="copier", client=client)
        client = client if client is not None else proc.client
        yield from client.csync(va, got)
        return got

    def close(self):
        self.rx_sock.close()

    def reopen(self):
        """Re-home the rx socket on the destination's (new) system.

        Part of node restart: the old socket died with the old machine;
        messages delivered between close and reopen were dropped on the
        floor, exactly like frames arriving at a rebooting NIC.
        """
        self.rx_sock = Socket(self.dst.system,
                              name="ch-%s-%s" % (self.src.node_id,
                                                 self.dst.node_id))
