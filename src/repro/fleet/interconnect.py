"""The modeled interconnect joining fleet nodes: RDMA-ish links.

Every directed ``(src, dst)`` pair gets its own :class:`Link` with a
propagation latency, a bandwidth, and a serialization point
(``busy_until``): back-to-back messages queue behind each other on the
wire while their latency pipelines.  Transfers are expressed as sim
events on the *destination* node's environment, which is what lets the
fleet stepper keep one deterministic virtual clock across machines: as
long as the stepping quantum never exceeds the smallest link latency,
a message computed against the sender's clock always lands in the
receiver's future (see :class:`~repro.fleet.fleet.FleetStepper`).

Faults are first-class: :meth:`Interconnect.partition` drops both
directions of a pair (counted, never silently), :meth:`slow` scales a
pair's latency and transfer time, and :meth:`heal` / :meth:`heal_all`
restore service.  The GFD control plane is addressed as the pseudo
endpoint :data:`GFD_ENDPOINT` so heartbeat paths partition just like
data links.
"""

DEFAULT_LINK_LATENCY = 20_000       # cycles; ~7 µs at 2.9 GHz
DEFAULT_LINK_BYTES_PER_CYCLE = 16.0  # ~46 GB/s per direction

#: Pseudo node id for the global fault detector's control plane.
GFD_ENDPOINT = "gfd"


class Link:
    """One directed link's service parameters, fault state and counters."""

    __slots__ = ("src", "dst", "latency_cycles", "bytes_per_cycle",
                 "partition_depth", "slow_factor", "busy_until",
                 "messages", "bytes_sent", "dropped", "queue_cycles")

    def __init__(self, src, dst, latency_cycles, bytes_per_cycle):
        self.src = src
        self.dst = dst
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self.partition_depth = 0
        self.slow_factor = 1.0
        self.busy_until = 0
        self.messages = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.queue_cycles = 0

    @property
    def partitioned(self):
        return self.partition_depth > 0


class Interconnect:
    def __init__(self, latency_cycles=DEFAULT_LINK_LATENCY,
                 bytes_per_cycle=DEFAULT_LINK_BYTES_PER_CYCLE):
        if latency_cycles < 1:
            raise ValueError("link latency must be >= 1 cycle")
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = float(bytes_per_cycle)
        self._envs = {}
        self._links = {}

    def attach(self, node_id, env):
        self._envs[node_id] = env

    def link(self, src, dst):
        key = (src, dst)
        lnk = self._links.get(key)
        if lnk is None:
            lnk = self._links[key] = Link(src, dst, self.latency_cycles,
                                          self.bytes_per_cycle)
        return lnk

    # -------------------------------------------------------------- faults

    def partition(self, a, b):
        """Cut both directions between ``a`` and ``b`` (data or control).

        Partitions nest: two overlapping ``partition`` calls need two
        ``heal`` calls (each fault event heals exactly once, so the link
        stays down until the *last* overlapping fault clears).
        """
        self.link(a, b).partition_depth += 1
        self.link(b, a).partition_depth += 1

    def heal(self, a, b):
        """Undo one ``partition``; extra heals are no-ops (floored at 0)."""
        for lnk in (self.link(a, b), self.link(b, a)):
            lnk.partition_depth = max(0, lnk.partition_depth - 1)

    def is_partitioned(self, a, b):
        return self.link(a, b).partitioned

    def slow(self, a, b, factor):
        """Degrade both directions by ``factor`` (latency and transfer)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        self.link(a, b).slow_factor = factor
        self.link(b, a).slow_factor = factor

    def heal_all(self):
        for lnk in self._links.values():
            lnk.partition_depth = 0
            lnk.slow_factor = 1.0

    # ------------------------------------------------------------ transfer

    def transmit(self, src, dst, payload, deliver):
        """Ship ``payload`` (bytes) from ``src`` to ``dst``.

        Returns ``False`` (and counts the drop) when the link is
        partitioned; otherwise schedules ``deliver(payload)`` on the
        destination environment at the modeled arrival time and returns
        ``True``.  Arrival is computed on the sender's clock; the
        ``max(0, ...)`` clamp below is defensive only — with the
        stepping quantum bounded by the link latency the destination
        clock can never have passed the arrival time.
        """
        lnk = self.link(src, dst)
        if lnk.partitioned:
            lnk.dropped += 1
            return False
        src_env = self._envs[src]
        dst_env = self._envs[dst]
        now = src_env.now
        start = max(now, lnk.busy_until)
        wire = int(len(payload) / lnk.bytes_per_cycle * lnk.slow_factor)
        lnk.busy_until = start + wire
        arrival = start + wire + int(lnk.latency_cycles * lnk.slow_factor)
        lnk.messages += 1
        lnk.bytes_sent += len(payload)
        lnk.queue_cycles += start - now
        dst_env.schedule(max(0, arrival - dst_env.now),
                         lambda: deliver(payload))
        return True

    # ------------------------------------------------------------- exports

    def snapshot(self):
        links = {}
        for (src, dst), lnk in sorted(self._links.items(), key=repr):
            links["%s->%s" % (src, dst)] = {
                "messages": lnk.messages,
                "bytes": lnk.bytes_sent,
                "dropped": lnk.dropped,
                "queue_cycles": lnk.queue_cycles,
                "partitioned": lnk.partitioned,
                "slow_factor": lnk.slow_factor,
            }
        return {
            "latency_cycles": self.latency_cycles,
            "bytes_per_cycle": self.bytes_per_cycle,
            "messages": sum(k.messages for k in self._links.values()),
            "bytes": sum(k.bytes_sent for k in self._links.values()),
            "dropped": sum(k.dropped for k in self._links.values()),
            "links": links,
        }
