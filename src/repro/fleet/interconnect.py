"""The modeled interconnect joining fleet nodes: RDMA-ish links.

Every directed ``(src, dst)`` pair gets its own :class:`Link` with a
propagation latency, a bandwidth, and a serialization point
(``busy_until``): back-to-back messages queue behind each other on the
wire while their latency pipelines.  Transfers are expressed as sim
events on the *destination* node's environment, which is what lets the
fleet stepper keep one deterministic virtual clock across machines: as
long as the stepping quantum never exceeds the smallest link latency,
a message computed against the sender's clock always lands in the
receiver's future (see :class:`~repro.fleet.fleet.FleetStepper`).

Faults are first-class: :meth:`Interconnect.partition` drops both
directions of a pair (counted, never silently), :meth:`slow` scales a
pair's latency and transfer time, and :meth:`heal` / :meth:`heal_all`
restore service.  The GFD control plane is addressed as the pseudo
endpoint :data:`GFD_ENDPOINT` so heartbeat paths partition just like
data links.

On top of the loud faults sits the *lossy* fault model: a seeded
:class:`LinkFaultPlan` arms per-link ``drop_rate`` / ``dup_rate`` /
``reorder_rate`` (bounded by ``reorder_window``) / ``corrupt_rate``
processes.  Unlike a partition, a lossy drop is **silent** — transmit
still returns ``True`` because the sender's NIC saw the frame leave;
the loss happens on the wire.  Duplicates deliver the same payload
twice, reorders delay one frame past its successors, and corruption
flips a single payload bit.  Every event is counted per link and the
per-link RNG is seeded from ``(plan seed, src, dst)`` so campaigns are
reproducible message-for-message.  Arm via the ``COPIER_LINK_FAULT_PLAN``
/ ``COPIER_LINK_FAULT_SEED`` environment knobs (consumed by
:class:`~repro.fleet.fleet.Fleet`, mirroring ``COPIER_FAULT_PLAN``) or
by passing ``fault_plan=`` explicitly.  With no plan armed the transmit
path is byte-identical to the lossless model.
"""

import os
import random

DEFAULT_LINK_LATENCY = 20_000       # cycles; ~7 µs at 2.9 GHz
DEFAULT_LINK_BYTES_PER_CYCLE = 16.0  # ~46 GB/s per direction

#: Pseudo node id for the global fault detector's control plane.
GFD_ENDPOINT = "gfd"

#: Recognized lossy fault processes, in the order they are drawn.
LINK_FAULT_KINDS = ("drop", "dup", "reorder", "corrupt")

#: Named plans for ``COPIER_LINK_FAULT_PLAN``.  Rates are chosen so a
#: multi-op fleet run exercises every process without drowning: the
#: reliable channel's retransmit budget tolerates ~15% aggregate loss.
_NAMED_LINK_PLANS = {
    "mixed": dict(drop_rate=0.08, dup_rate=0.05, reorder_rate=0.08,
                  reorder_window=4, corrupt_rate=0.05),
    "drop": dict(drop_rate=0.15),
    "dup": dict(dup_rate=0.15),
    "reorder": dict(reorder_rate=0.20, reorder_window=4),
    "corrupt": dict(corrupt_rate=0.10),
}

LINK_PLAN_NAMES = tuple(sorted(_NAMED_LINK_PLANS))

_OFF_VALUES = ("", "none", "off", "0")


class LinkFaultPlan:
    """A seeded description of how lossy every link should be."""

    __slots__ = ("name", "seed", "drop_rate", "dup_rate", "reorder_rate",
                 "reorder_window", "corrupt_rate")

    def __init__(self, name, seed=0, drop_rate=0.0, dup_rate=0.0,
                 reorder_rate=0.0, reorder_window=0, corrupt_rate=0.0):
        for label, rate in (("drop_rate", drop_rate), ("dup_rate", dup_rate),
                            ("reorder_rate", reorder_rate),
                            ("corrupt_rate", corrupt_rate)):
            if not 0.0 <= rate < 1.0:
                raise ValueError("%s must be in [0, 1), got %r"
                                 % (label, rate))
        if reorder_window < 0:
            raise ValueError("reorder_window must be >= 0")
        if reorder_rate > 0.0 and reorder_window < 1:
            raise ValueError("reorder_rate needs a reorder_window >= 1")
        self.name = name
        self.seed = seed
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.reorder_rate = reorder_rate
        self.reorder_window = reorder_window
        self.corrupt_rate = corrupt_rate

    @classmethod
    def named(cls, name, seed=0):
        try:
            rates = _NAMED_LINK_PLANS[name]
        except KeyError:
            raise ValueError("unknown link fault plan %r (choose from %s)"
                             % (name, ", ".join(LINK_PLAN_NAMES))) from None
        return cls(name, seed=seed, **rates)

    @classmethod
    def from_env(cls, environ=None):
        """Build the env-armed plan, or ``None`` when disarmed."""
        environ = environ if environ is not None else os.environ
        name = environ.get("COPIER_LINK_FAULT_PLAN", "").strip().lower()
        if name in _OFF_VALUES:
            return None
        seed = int(environ.get("COPIER_LINK_FAULT_SEED", "0"))
        return cls.named(name, seed=seed)

    def link_rng(self, src, dst):
        """The per-link fault RNG: stable across runs, distinct per link."""
        return random.Random(repr((self.seed, src, dst)))

    def as_dict(self):
        return {
            "name": self.name,
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "reorder_window": self.reorder_window,
            "corrupt_rate": self.corrupt_rate,
        }


class Link:
    """One directed link's service parameters, fault state and counters."""

    __slots__ = ("src", "dst", "latency_cycles", "bytes_per_cycle",
                 "partition_depth", "slow_factor", "busy_until",
                 "messages", "bytes_sent", "dropped", "queue_cycles",
                 "rng", "drop_rate", "dup_rate", "reorder_rate",
                 "reorder_window", "corrupt_rate",
                 "lossy_dropped", "dups", "reorders", "corruptions")

    def __init__(self, src, dst, latency_cycles, bytes_per_cycle,
                 fault_plan=None):
        self.src = src
        self.dst = dst
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = bytes_per_cycle
        self.partition_depth = 0
        self.slow_factor = 1.0
        self.busy_until = 0
        self.messages = 0
        self.bytes_sent = 0
        self.dropped = 0
        self.queue_cycles = 0
        self.rng = None
        self.drop_rate = 0.0
        self.dup_rate = 0.0
        self.reorder_rate = 0.0
        self.reorder_window = 0
        self.corrupt_rate = 0.0
        self.lossy_dropped = 0
        self.dups = 0
        self.reorders = 0
        self.corruptions = 0
        if fault_plan is not None:
            self.arm(fault_plan)

    def arm(self, plan):
        """Seed this link's fault processes from ``plan``."""
        self.rng = plan.link_rng(self.src, self.dst)
        self.set_rates(drop_rate=plan.drop_rate, dup_rate=plan.dup_rate,
                       reorder_rate=plan.reorder_rate,
                       reorder_window=plan.reorder_window,
                       corrupt_rate=plan.corrupt_rate)

    def set_rates(self, drop_rate=None, dup_rate=None, reorder_rate=None,
                  reorder_window=None, corrupt_rate=None):
        """Override individual fault rates (chaos storms boost and restore).

        The RNG is untouched: a storm changes the odds, not the dice, so
        a seeded run replays identically event-for-event.
        """
        if drop_rate is not None:
            self.drop_rate = min(drop_rate, 0.95)
        if dup_rate is not None:
            self.dup_rate = min(dup_rate, 0.95)
        if reorder_rate is not None:
            self.reorder_rate = min(reorder_rate, 0.95)
        if reorder_window is not None:
            self.reorder_window = reorder_window
        if corrupt_rate is not None:
            self.corrupt_rate = min(corrupt_rate, 0.95)

    @property
    def partitioned(self):
        return self.partition_depth > 0


class Interconnect:
    def __init__(self, latency_cycles=DEFAULT_LINK_LATENCY,
                 bytes_per_cycle=DEFAULT_LINK_BYTES_PER_CYCLE,
                 fault_plan=None):
        if latency_cycles < 1:
            raise ValueError("link latency must be >= 1 cycle")
        if bytes_per_cycle <= 0:
            raise ValueError("link bandwidth must be positive")
        self.latency_cycles = latency_cycles
        self.bytes_per_cycle = float(bytes_per_cycle)
        self.fault_plan = fault_plan
        self._envs = {}
        self._links = {}

    def attach(self, node_id, env):
        self._envs[node_id] = env

    def link(self, src, dst):
        key = (src, dst)
        lnk = self._links.get(key)
        if lnk is None:
            lnk = self._links[key] = Link(src, dst, self.latency_cycles,
                                          self.bytes_per_cycle,
                                          fault_plan=self.fault_plan)
        return lnk

    # -------------------------------------------------------------- faults

    def partition(self, a, b):
        """Cut both directions between ``a`` and ``b`` (data or control).

        Partitions nest: two overlapping ``partition`` calls need two
        ``heal`` calls (each fault event heals exactly once, so the link
        stays down until the *last* overlapping fault clears).
        """
        self.link(a, b).partition_depth += 1
        self.link(b, a).partition_depth += 1

    def heal(self, a, b):
        """Undo one ``partition``; extra heals are no-ops (floored at 0)."""
        for lnk in (self.link(a, b), self.link(b, a)):
            lnk.partition_depth = max(0, lnk.partition_depth - 1)

    def is_partitioned(self, a, b):
        return self.link(a, b).partitioned

    def slow(self, a, b, factor):
        """Degrade both directions by ``factor`` (latency and transfer)."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        self.link(a, b).slow_factor = factor
        self.link(b, a).slow_factor = factor

    def set_link_faults(self, a, b, **rates):
        """Override both directions' lossy rates (see ``Link.set_rates``).

        Requires an armed fault plan: the per-link RNGs exist only when
        the interconnect was built lossy, so a rate boost never has to
        invent entropy mid-run.
        """
        if self.fault_plan is None:
            raise ValueError("set_link_faults needs an armed fault_plan")
        self.link(a, b).set_rates(**rates)
        self.link(b, a).set_rates(**rates)

    def reset_link_faults(self, a, b):
        """Restore both directions to the armed plan's baseline rates."""
        if self.fault_plan is None:
            raise ValueError("reset_link_faults needs an armed fault_plan")
        plan = self.fault_plan
        for lnk in (self.link(a, b), self.link(b, a)):
            lnk.set_rates(drop_rate=plan.drop_rate, dup_rate=plan.dup_rate,
                          reorder_rate=plan.reorder_rate,
                          reorder_window=plan.reorder_window,
                          corrupt_rate=plan.corrupt_rate)

    def heal_all(self):
        for lnk in self._links.values():
            lnk.partition_depth = 0
            lnk.slow_factor = 1.0

    # ------------------------------------------------------------ transfer

    def transmit(self, src, dst, payload, deliver):
        """Ship ``payload`` (bytes) from ``src`` to ``dst``.

        Returns ``False`` (and counts the drop) when the link is
        partitioned; otherwise schedules ``deliver(payload)`` on the
        destination environment at the modeled arrival time and returns
        ``True``.  Arrival is computed on the sender's clock; the
        ``max(0, ...)`` clamp below is defensive only — with the
        stepping quantum bounded by the link latency the destination
        clock can never have passed the arrival time.

        When a :class:`LinkFaultPlan` is armed the frame then runs the
        lossy gauntlet — drop (silently: still returns ``True``),
        corrupt (one bit flipped in the delivered copy), reorder (extra
        latency, bounded by the window), duplicate (a second delivery).
        """
        lnk = self.link(src, dst)
        if lnk.partitioned:
            lnk.dropped += 1
            return False
        src_env = self._envs[src]
        dst_env = self._envs[dst]
        now = src_env.now
        start = max(now, lnk.busy_until)
        wire = int(len(payload) / lnk.bytes_per_cycle * lnk.slow_factor)
        lnk.busy_until = start + wire
        arrival = start + wire + int(lnk.latency_cycles * lnk.slow_factor)
        lnk.messages += 1
        lnk.bytes_sent += len(payload)
        lnk.queue_cycles += start - now
        rng = lnk.rng
        if rng is not None:
            # The frame occupied the wire (accounted above) but is lost
            # in flight: the sender cannot tell, so this returns True.
            if lnk.drop_rate and rng.random() < lnk.drop_rate:
                lnk.lossy_dropped += 1
                return True
            if lnk.corrupt_rate and payload and (
                    rng.random() < lnk.corrupt_rate):
                buf = bytearray(payload)
                pos = rng.randrange(len(buf))
                buf[pos] ^= 1 << rng.randrange(8)
                payload = bytes(buf)
                lnk.corruptions += 1
            if lnk.reorder_rate and rng.random() < lnk.reorder_rate:
                hold = rng.randint(1, lnk.reorder_window)
                arrival += hold * max(
                    1, int(lnk.latency_cycles * lnk.slow_factor))
                lnk.reorders += 1
            if lnk.dup_rate and rng.random() < lnk.dup_rate:
                lnk.dups += 1
                dup_arrival = arrival + rng.randint(1, lnk.latency_cycles)
                dst_env.schedule(max(0, dup_arrival - dst_env.now),
                                 lambda p=payload: deliver(p))
        dst_env.schedule(max(0, arrival - dst_env.now),
                         lambda p=payload: deliver(p))
        return True

    # ------------------------------------------------------------- exports

    def stats(self):
        """Full per-link counters plus totals (always available).

        Unlike :meth:`snapshot` — whose shape is pinned by differential
        fingerprints — this always reports the lossy counters, so tools
        and tests can assert the totals/per-link consistency invariant.
        """
        links = {}
        for (src, dst), lnk in sorted(self._links.items(), key=repr):
            links["%s->%s" % (src, dst)] = {
                "messages": lnk.messages,
                "bytes_sent": lnk.bytes_sent,
                "dropped": lnk.dropped,
                "lossy_dropped": lnk.lossy_dropped,
                "dups": lnk.dups,
                "reorders": lnk.reorders,
                "corruptions": lnk.corruptions,
                "queue_cycles": lnk.queue_cycles,
                "partitioned": lnk.partitioned,
                "slow_factor": lnk.slow_factor,
            }
        totals = {}
        for field in ("messages", "bytes_sent", "dropped", "lossy_dropped",
                      "dups", "reorders", "corruptions", "queue_cycles"):
            totals[field] = sum(getattr(k, field)
                                for k in self._links.values())
        return {
            "fault_plan": (self.fault_plan.as_dict()
                           if self.fault_plan is not None else None),
            "totals": totals,
            "links": links,
        }

    def snapshot(self):
        links = {}
        for (src, dst), lnk in sorted(self._links.items(), key=repr):
            entry = {
                "messages": lnk.messages,
                "bytes": lnk.bytes_sent,
                "dropped": lnk.dropped,
                "queue_cycles": lnk.queue_cycles,
                "partitioned": lnk.partitioned,
                "slow_factor": lnk.slow_factor,
            }
            if self.fault_plan is not None:
                entry["lossy_dropped"] = lnk.lossy_dropped
                entry["dups"] = lnk.dups
                entry["reorders"] = lnk.reorders
                entry["corruptions"] = lnk.corruptions
            links["%s->%s" % (src, dst)] = entry
        snap = {
            "latency_cycles": self.latency_cycles,
            "bytes_per_cycle": self.bytes_per_cycle,
            "messages": sum(k.messages for k in self._links.values()),
            "bytes": sum(k.bytes_sent for k in self._links.values()),
            "dropped": sum(k.dropped for k in self._links.values()),
            "links": links,
        }
        if self.fault_plan is not None:
            snap["link_faults"] = {
                "plan": self.fault_plan.as_dict(),
                "lossy_dropped": sum(k.lossy_dropped
                                     for k in self._links.values()),
                "dups": sum(k.dups for k in self._links.values()),
                "reorders": sum(k.reorders for k in self._links.values()),
                "corruptions": sum(k.corruptions
                                   for k in self._links.values()),
            }
        return snap
