"""The per-node KV store engine: one System, copy-offloaded SET/GET.

This is the storage half of the socket frontends factored into a
fleet-agnostic engine, so the differential suite can run the *same*
code on a bare :class:`~repro.kernel.system.System` and inside a
single-node :class:`~repro.fleet.fleet.Fleet` and demand identical
counters.  A SET lands its payload in the staging buffer (NIC-DMA
stand-in), ``amemcpy``s it into the arena and ``csync``s to publish; a
GET copies the stored value into the out buffer and reads it back.

Staging and out buffers are shared across the node's concurrent ops,
so both op generators hold the store's :class:`SimLock` end to end —
the csync inside the critical section guarantees the shared buffer is
quiescent before the next holder writes it.
"""

import hashlib

from repro.fleet.errors import StoreFull
from repro.fleet.netpath import MAX_MSG, SimLock

_ALIGN = 4096


class KVStore:
    def __init__(self, system, name="store", staging_bytes=MAX_MSG,
                 arena_bytes=4 * 1024 * 1024, queue_capacity=2048):
        self.system = system
        self.name = name
        self.proc = system.create_process(name, queue_capacity=queue_capacity)
        self.client = self.proc.client
        self.staging = self.proc.mmap(staging_bytes, populate=True,
                                      name=name + "-staging")
        self.out = self.proc.mmap(staging_bytes, populate=True,
                                  name=name + "-out")
        self.staging_bytes = staging_bytes
        self.arena = self.proc.mmap(arena_bytes, name=name + "-arena")
        self.arena_bytes = arena_bytes
        self._cursor = 0
        self.lock = SimLock(system.env)
        self.db = {}  # key -> (va, length)
        self.sets = 0
        self.gets = 0
        self.misses = 0

    def _alloc(self, length):
        aligned = (length + _ALIGN - 1) & ~(_ALIGN - 1)
        if self._cursor + aligned > self.arena_bytes:
            raise StoreFull("%s arena exhausted at %d bytes"
                            % (self.name, self._cursor))
        va = self.arena + self._cursor
        self._cursor += aligned
        return va

    def set_op(self, key, value):
        """Commit ``key = value`` through the copy path (generator)."""
        if len(value) > self.staging_bytes:
            raise StoreFull("value of %d bytes exceeds staging" % len(value))
        yield from self.lock.acquire()
        try:
            self.proc.write(self.staging, value)
            existing = self.db.get(key)
            if existing is not None and existing[1] == len(value):
                va = existing[0]  # same-size slot reuse
            else:
                va = self._alloc(len(value))
            yield from self.client.amemcpy(va, self.staging, len(value))
            yield from self.client.csync(va, len(value))
            self.db[key] = (va, len(value))
            self.sets += 1
        finally:
            self.lock.release()

    def get_op(self, key):
        """Read ``key`` through the copy path; returns bytes or ``None``."""
        self.gets += 1
        if key not in self.db:
            self.misses += 1
            return None
        yield from self.lock.acquire()
        try:
            # Re-read under the lock: a concurrent set may have moved
            # the value to a new slot while this reader queued, and the
            # returned bytes must match the store's version bookkeeping
            # as of the moment the copy starts.
            va, length = self.db[key]
            yield from self.client.amemcpy(self.out, va, length)
            yield from self.client.csync(self.out, length)
            return bytes(self.proc.read(self.out, length))
        finally:
            self.lock.release()

    def load_value(self, key, value):
        """Install ``key = value`` directly (disk recovery; no sim cost).

        Restart-time WAL/checkpoint replay is local disk I/O, modeled
        free like :meth:`value_bytes`; live data still goes through the
        copy path via :meth:`set_op`.
        """
        existing = self.db.get(key)
        if existing is not None and existing[1] == len(value):
            va = existing[0]
        else:
            va = self._alloc(len(value))
        self.proc.write(va, value)
        self.db[key] = (va, len(value))

    def value_bytes(self, key):
        """Raw arena read (resync/audit paths; no simulated cost)."""
        va, length = self.db[key]
        return bytes(self.proc.read(va, length))

    def digest(self):
        """Order-independent content hash of the whole store."""
        h = hashlib.sha1()
        for key in sorted(self.db):
            h.update(repr(key).encode())
            h.update(self.value_bytes(key))
        return h.hexdigest()

    def snapshot(self):
        return {"keys": len(self.db), "sets": self.sets, "gets": self.gets,
                "misses": self.misses, "arena_used": self._cursor}
