"""Bounded exploration + refinement check."""


def explore(machine, max_states=2_000_000):
    """DFS over every schedule; returns the set of observable outcomes."""
    outcomes = set()
    seen = set()
    stack = [machine]
    visited = 0
    while stack:
        m = stack.pop()
        visited += 1
        if visited > max_states:
            raise RuntimeError("state-space budget exceeded")
        if m.done():
            outcomes.add(m.observable())
            continue
        enabled = m.enabled()
        if not enabled:
            # Deadlock (e.g. csync waiting on a copy that cannot finish):
            # record as a distinguished outcome so refinement fails loudly.
            outcomes.add(("DEADLOCK", m.observable()))
            continue
        for tid in enabled:
            for successor in m.step(tid):
                key = _state_key(successor)
                if key not in seen:
                    seen.add(key)
                    stack.append(successor)
    return outcomes


def _state_key(m):
    mem = tuple(sorted(
        (a, tuple(v) if isinstance(v, list) else v)
        for a, v in m.memory.items()))
    copies = tuple(
        (c.dst, c.src, c.n, c.progress, c.handler_ran)
        for c in getattr(m, "copies", []))
    # Register files mix string keys with the sync machine's in-progress
    # ("_copy_progress", pc) tuples; sort by repr so the key is stable.
    return (mem, tuple(m.pc),
            tuple(tuple(sorted(r.items(), key=repr)) for r in m.regs),
            tuple(sorted(m.freed)), copies)


def check_refinement(sync_machine, async_machine, max_states=2_000_000):
    """True iff every async outcome is also a sync outcome.

    This is the observable-behaviour half of the RGSim theorem: with
    csync placed per the §5.1.1 guidelines, ``P_async`` cannot exhibit a
    final state ``P_sync`` could not — "Copier will not introduce any new
    bugs once csync is correctly used".
    """
    sync_outcomes = explore(sync_machine, max_states)
    async_outcomes = explore(async_machine, max_states)
    rogue = async_outcomes - sync_outcomes
    return (not rogue), sync_outcomes, async_outcomes, rogue
