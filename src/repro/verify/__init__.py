"""Executable check of the Appendix A refinement theorem.

The paper proves (RGSim, Appendix A) that a program using ``amemcpy`` +
correctly-placed ``csync`` refines the same program using ``memcpy``.  We
replace the hand proof with a *bounded model checker*: enumerate every
interleaving of a small multi-threaded program under both semantics and
check that the set of async outcomes is a subset of the sync outcomes.
"""

from repro.verify.model import AsyncMachine, SyncMachine, Thread
from repro.verify.checker import check_refinement, explore

__all__ = ["AsyncMachine", "SyncMachine", "Thread", "check_refinement",
           "explore"]
