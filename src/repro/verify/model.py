"""Protocol-level state machines for the refinement check (Appendix A).

State model follows the appendix: async memory maps each address to a
value or a list of ``(value, id)`` pairs when amemcpys are pending; csync
truncates a list to the value with the largest id.  The async machine adds
the auxiliary amemcpy status list ``(args, id, csynced, passph, handler)``
— here: per-copy progress plus handler bookkeeping.

Programs are lists of small-step instructions per thread:

* ``("write", addr, value)`` / ``("read", addr, reg)``
* ``("memcpy", dst, src, n)`` — sync machine; one byte per step.
* ``("amemcpy", dst, src, n[, handler])`` — async machine.
* ``("csync", addr, n)`` / ``("csync_all",)``
* ``("free", addr, n)`` — models the Fig. 4 handler effect.

The *observable* state is the final memory (minus freed cells) plus each
thread's registers — exactly what RGSim's consistency relation relates.
"""

import itertools


class Thread:
    def __init__(self, instructions):
        self.instructions = list(instructions)


class _Copy:
    """Auxiliary amemcpy record: (args, id, csynced, passph, handler)."""

    __slots__ = ("dst", "src", "n", "copy_id", "progress", "handler",
                 "handler_ran")

    def __init__(self, dst, src, n, copy_id, handler):
        self.dst = dst
        self.src = src
        self.n = n
        self.copy_id = copy_id
        self.progress = 0  # bytes copied so far
        self.handler = handler
        self.handler_ran = False

    def clone(self):
        c = _Copy(self.dst, self.src, self.n, self.copy_id, self.handler)
        c.progress = self.progress
        c.handler_ran = self.handler_ran
        return c


class _MachineBase:
    def __init__(self, memory, threads):
        self.memory = dict(memory)
        self.freed = set()
        self.threads = [list(t.instructions) for t in threads]
        self.pc = [0] * len(threads)
        self.regs = [{} for _ in threads]

    def done(self):
        return all(pc >= len(t) for pc, t in zip(self.pc, self.threads))

    def observable(self):
        mem = tuple(sorted(
            (a, self._latest(v)) for a, v in self.memory.items()
            if a not in self.freed))
        # key=repr: deadlock outcomes snapshot mid-execution, when the
        # sync machine's tuple-keyed copy-progress entries coexist with
        # string-named registers.
        regs = tuple(tuple(sorted(r.items(), key=repr)) for r in self.regs)
        return (mem, regs)

    @staticmethod
    def _latest(value):
        if isinstance(value, list):
            return max(value, key=lambda pair: pair[1])[0]
        return value

    def _read_mem(self, addr):
        return self._latest(self.memory.get(addr, 0))


class SyncMachine(_MachineBase):
    """memcpy semantics: one byte copied atomically per step."""

    def enabled(self):
        return [i for i, (pc, t) in enumerate(zip(self.pc, self.threads))
                if pc < len(t)]

    def clone(self):
        m = SyncMachine.__new__(SyncMachine)
        m.memory = dict(self.memory)
        m.freed = set(self.freed)
        m.threads = self.threads
        m.pc = list(self.pc)
        m.regs = [dict(r) for r in self.regs]
        return m

    def step(self, tid):
        """Execute one atomic step of thread ``tid``; returns new machines
        (one — sync is deterministic per schedule)."""
        m = self.clone()
        ins = m.threads[tid][m.pc[tid]]
        kind = ins[0]
        if kind == "write":
            _k, addr, value = ins
            m.memory[addr] = value
            m.pc[tid] += 1
        elif kind == "read":
            _k, addr, reg = ins
            m.regs[tid][reg] = m._read_mem(addr)
            m.pc[tid] += 1
        elif kind in ("memcpy", "amemcpy"):
            dst, src, n = ins[1], ins[2], ins[3]
            handler = ins[4] if len(ins) > 4 else None
            # Copy byte-by-byte atomically: expand into per-byte writes by
            # tracking progress in the register file.
            key = ("_copy_progress", m.pc[tid])
            progress = m.regs[tid].get(key, 0)
            if progress < n:
                m.memory[dst + progress] = m._read_mem(src + progress)
                m.regs[tid][key] = progress + 1
            if m.regs[tid].get(key, 0) >= n:
                del m.regs[tid][key]
                if handler is not None and handler[0] == "free":
                    for off in range(handler[2]):
                        m.freed.add(handler[1] + off)
                m.pc[tid] += 1
        elif kind in ("csync", "csync_all"):
            m.pc[tid] += 1  # no-op under sync semantics
        elif kind == "free":
            _k, addr, n = ins
            for off in range(n):
                m.freed.add(addr + off)
            m.pc[tid] += 1
        else:
            raise ValueError("unknown instruction %r" % (kind,))
        return [m]


class AsyncMachine(_MachineBase):
    """amemcpy + csync semantics with value-pair lists (Appendix A)."""

    def __init__(self, memory, threads):
        super().__init__(memory, threads)
        self.copies = []
        self._ids = itertools.count(1)

    def clone(self):
        m = AsyncMachine.__new__(AsyncMachine)
        m.memory = {a: (list(v) if isinstance(v, list) else v)
                    for a, v in self.memory.items()}
        m.freed = set(self.freed)
        m.threads = self.threads
        m.pc = list(self.pc)
        m.regs = [dict(r) for r in self.regs]
        m.copies = [c.clone() for c in self.copies]
        m._ids = itertools.count(next(self._ids))
        return m

    # The Copier service is modeled as an extra "thread": scheduler id -1.
    SERVICE = "service"

    def enabled(self):
        ids = [i for i, (pc, t) in enumerate(zip(self.pc, self.threads))
               if pc < len(t) and not self._blocked(i)]
        if any(c.progress < c.n for c in self.copies):
            ids.append(self.SERVICE)
        return ids

    def _blocked(self, tid):
        ins = self.threads[tid][self.pc[tid]]
        if ins[0] == "csync":
            _k, addr, n = ins
            return not self._range_done(addr, n)
        if ins[0] == "csync_all":
            return any(c.progress < c.n for c in self.copies)
        return False

    def _range_done(self, addr, n):
        for c in self.copies:
            lo = max(c.dst, addr)
            hi = min(c.dst + c.n, addr + n)
            if lo < hi and c.progress < (hi - c.dst):
                return False
        return True

    def done(self):
        return (super().done()
                and all(c.progress >= c.n for c in self.copies))

    def step(self, tid):
        if tid == self.SERVICE:
            return self._service_steps()
        m = self.clone()
        ins = m.threads[tid][m.pc[tid]]
        kind = ins[0]
        if kind == "write":
            _k, addr, value = ins
            m.memory[addr] = value  # csync guidelines ensure no race here
            m.pc[tid] += 1
        elif kind == "read":
            _k, addr, reg = ins
            m.regs[tid][reg] = m._read_mem(addr)
            m.pc[tid] += 1
        elif kind == "amemcpy":
            dst, src, n = ins[1], ins[2], ins[3]
            handler = ins[4] if len(ins) > 4 else None
            m.copies.append(_Copy(dst, src, n, next(m._ids), handler))
            m.pc[tid] += 1
        elif kind == "memcpy":
            raise ValueError("async program contains raw memcpy")
        elif kind in ("csync", "csync_all"):
            # enabled() guarantees the range is done; truncate lists.
            if kind == "csync":
                for off in range(ins[2]):
                    v = m.memory.get(ins[1] + off)
                    if isinstance(v, list):
                        m.memory[ins[1] + off] = m._latest(v)
            m._run_ready_handlers()
            m.pc[tid] += 1
        elif kind == "free":
            _k, addr, n = ins
            for off in range(n):
                m.freed.add(addr + off)
            m.pc[tid] += 1
        else:
            raise ValueError("unknown instruction %r" % (kind,))
        return [m]

    def _service_steps(self):
        """Every pending copy may advance one byte: branch per choice."""
        out = []
        for index, c in enumerate(self.copies):
            if c.progress >= c.n:
                continue
            m = self.clone()
            mc = m.copies[index]
            value = m._read_mem(mc.src + mc.progress)
            cell = m.memory.get(mc.dst + mc.progress)
            pair = (value, mc.copy_id)
            if isinstance(cell, list):
                cell.append(pair)
            else:
                m.memory[mc.dst + mc.progress] = [pair]
            mc.progress += 1
            if mc.progress >= mc.n:
                m._run_ready_handlers()
            out.append(m)
        return out

    def _run_ready_handlers(self):
        for c in self.copies:
            if (c.progress >= c.n and c.handler is not None
                    and not c.handler_ran):
                if c.handler[0] == "free":
                    for off in range(c.handler[2]):
                        self.freed.add(c.handler[1] + off)
                c.handler_ran = True

    def observable(self):
        mem = tuple(sorted(
            (a, self._latest(v)) for a, v in self.memory.items()
            if a not in self.freed))
        regs = tuple(tuple(sorted(r.items(), key=repr)) for r in self.regs)
        return (mem, regs)
