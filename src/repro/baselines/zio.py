"""zIO: transparent zero-copy IO via on-demand page-fault copies.

Model of Stamler et al. (OSDI '22) as the paper characterizes it (§2.2,
§6): user-mode only, intercepts large intra-process copies and replaces
them with an indirection; data materializes on access through a page
fault, or is lost work when the *source* is overwritten first (Redis's
recycled input buffer, §6.2.1).  Fully page-aligned large transfers can
steal pages outright and never copy.

The paper's evaluation sets zIO's threshold to 4 KB (§6 Baselines).
"""

from repro.mem.phys import PAGE_SIZE
from repro.sim import Compute


class _Indirection:
    __slots__ = ("dst", "src", "nbytes")

    def __init__(self, dst, src, nbytes):
        self.dst = dst
        self.src = src
        self.nbytes = nbytes


class ZIO:
    """Per-process zIO runtime."""

    #: Minimum size where ownership transfer (page stealing) applies.
    STEAL_MIN = 64 * 1024

    def __init__(self, system, proc, threshold=None):
        self.system = system
        self.proc = proc
        self.threshold = (system.params.zio_threshold_bytes
                          if threshold is None else threshold)
        self._indirections = []
        self.stats = {"sync": 0, "indirect": 0, "steal": 0,
                      "fault_copies": 0, "dropped": 0}

    # ------------------------------------------------------------------ API

    def copy(self, dst, src, nbytes):
        """Intercepted memcpy (generator)."""
        params = self.system.params
        if nbytes < self.threshold:
            self.stats["sync"] += 1
            yield from self.system.sync_copy(
                self.proc, self.proc.aspace, src, self.proc.aspace, dst,
                nbytes, engine="avx")
            return
        pages = (nbytes + PAGE_SIZE - 1) // PAGE_SIZE
        if (nbytes >= self.STEAL_MIN and dst % PAGE_SIZE == 0
                and src % PAGE_SIZE == 0 and nbytes % PAGE_SIZE == 0):
            # Ownership transfer: remap the source pages into dst, give the
            # source fresh pages.  No copy, ever.
            self.stats["steal"] += 1
            yield Compute(pages * params.zio_remap_cycles_per_page
                          + params.zio_tlb_flush_cycles, tag="copy")
            data = self.proc.read(src, nbytes)
            self.proc.write(dst, data)  # the remap's observable effect
            return
        if nbytes >= self.STEAL_MIN:
            # Partial steal ("Partial" alignment support in Table 1):
            # copy the unaligned head/tail pages, remap the aligned middle.
            self.stats["steal"] += 1
            head = (-src) % PAGE_SIZE
            tail = (src + nbytes) % PAGE_SIZE
            middle_pages = (nbytes - head - tail) // PAGE_SIZE
            edge = head + tail
            if edge:
                yield Compute(params.cpu_copy_cycles(edge, engine="avx"),
                              tag="copy")
            yield Compute(middle_pages * params.zio_remap_cycles_per_page
                          + params.zio_tlb_flush_cycles, tag="copy")
            data = self.proc.read(src, nbytes)
            self.proc.write(dst, data)
            return
        # Deferred copy: record the indirection; only cheap metadata
        # tracking is paid now — remap/fault costs land on whoever
        # materializes it (zIO's page-fault path).
        self.stats["indirect"] += 1
        yield Compute(params.zio_track_cycles, tag="copy")
        self._indirections.append(_Indirection(dst, src, nbytes))

    def touch_read(self, va, nbytes):
        """App is about to read [va, va+nbytes): materialize if indirected."""
        for ind in list(self._indirections):
            if va < ind.dst + ind.nbytes and ind.dst < va + nbytes:
                yield from self._materialize(ind)

    def before_write(self, va, nbytes):
        """App is about to overwrite [va, va+nbytes).

        Overwriting an indirection's *source* forces materialization (the
        deferred copy must happen now — zIO's page-fault path); overwriting
        its *destination* just drops the bookkeeping.
        """
        for ind in list(self._indirections):
            if va < ind.src + ind.nbytes and ind.src < va + nbytes:
                yield from self._materialize(ind)
            elif va <= ind.dst and ind.dst + ind.nbytes <= va + nbytes:
                self._indirections.remove(ind)
                self.stats["dropped"] += 1

    def send_source(self, va, nbytes):
        """Resolve the buffer send() should transmit from.

        zIO interposes on send: a fully-indirected buffer is transmitted
        straight from its original source, skipping materialization —
        this is how it removes one userspace copy on the Redis GET path.
        Returns ``(va, consumed_indirection_or_None)``.
        """
        for ind in self._indirections:
            if ind.dst == va and ind.nbytes >= nbytes:
                return ind.src, ind
        return va, None

    def drop(self, ind):
        if ind in self._indirections:
            self._indirections.remove(ind)
            self.stats["dropped"] += 1

    # -------------------------------------------------------------- helpers

    def _materialize(self, ind):
        params = self.system.params
        self._indirections.remove(ind)
        self.stats["fault_copies"] += 1
        yield Compute(params.zio_fault_cycles, tag="copy")
        yield from self.system.sync_copy(
            self.proc, self.proc.aspace, ind.src, self.proc.aspace, ind.dst,
            ind.nbytes, engine="avx")
