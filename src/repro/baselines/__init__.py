"""Baseline copy-optimization systems the paper compares against (§6).

* :mod:`repro.baselines.synccopy` — plain user-mode AVX memcpy (glibc).
* :mod:`repro.baselines.zio` — zIO's transparent zero-copy IO (OSDI '22).
* :mod:`repro.baselines.ub` — Userspace Bypass (OSDI '23).

Zero-copy sockets (MSG_ZEROCOPY) and io_uring (plain + batched) are
syscall modes in :mod:`repro.kernel.net`.
"""

from repro.baselines.synccopy import user_memcpy
from repro.baselines.zio import ZIO
from repro.baselines.ub import ub_compute

__all__ = ["user_memcpy", "ZIO", "ub_compute"]
