"""Userspace Bypass (UB) model.

Zhou et al. (OSDI '23): syscall-intensive code is translated to run inside
the kernel, eliminating most privilege-crossing cost; the price is
instrumented (slower) memory access in the bypassed region.  The paper's
evaluation finds UB only helps small payloads — once copy dominates, the
cheap traps stop mattering and the slowdown hurts (§6.1.2, §6.2.1).

Usage: pass ``mode="ub"`` to the syscall wrappers (cheap traps) and wrap
app-side compute with :func:`ub_compute` (the slowdown).
"""

from repro.sim import Compute


def ub_compute(system, proc, cycles, tag="app"):
    """App computation under UB's instrumented memory access."""
    inflated = int(cycles * system.params.ub_slowdown_factor)
    return Compute(system.cache.charge(proc.cache_key, inflated), tag=tag,
                   instructions=cycles)
