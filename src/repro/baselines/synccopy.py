"""Baseline user-mode synchronous memcpy (glibc AVX)."""


def user_memcpy(system, proc, dst, src, nbytes, warm=False):
    """glibc-style memcpy: AVX2 rate, in-context, pollutes the app cache."""
    yield from system.sync_copy(proc, proc.aspace, src, proc.aspace, dst,
                                nbytes, engine="avx", warm=warm)
