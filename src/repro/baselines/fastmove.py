"""Fastmove-style synchronous DMA copy (Table 1, FAST '23).

Fastmove uses on-chip DMA (I/OAT) to move data for NVM storage paths:
the CPU submits the descriptor, then *waits* for completion — saving CPU
pipeline work for large copies but blocking the caller (Table 1: "No
blocking ✗") and paying submit+translation overhead that loses on small
copies.
"""

from repro.hw.dma import DMAEngine, DMASubtask
from repro.sim import Compute, WaitEvent


class Fastmove:
    """A kernel-side DMA-copy facility with its own engine handle."""

    def __init__(self, system):
        self.system = system
        self.dma = DMAEngine(system.env, system.params,
                             check_contiguity=True)
        self.copies = 0

    def copy(self, proc, src_as, src_va, dst_as, dst_va, nbytes):
        """Synchronous DMA copy; the caller blocks until completion."""
        params = self.system.params
        pages = max(1, (nbytes + 4095) // 4096)
        # Translation for both sides plus descriptor submit.
        yield Compute(params.dma_submit_cycles
                      + 2 * pages * params.page_translate_cycles,
                      tag="copy")
        done = self.dma.submit([DMASubtask(src_as, src_va, dst_as, dst_va,
                                           nbytes)])
        yield WaitEvent(done)
        yield Compute(params.dma_complete_check_cycles, tag="copy")
        self.copies += 1
