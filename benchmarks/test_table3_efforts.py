"""Table 3: development effort to adapt apps and OS services.

The paper counts the LoC touched to port each app (14-94 LoC).  We count
the *Copier-specific* lines in our ports — lines invoking the async-copy
API (amemcpy/csync/abort/descriptor/lazy plumbing) — as the equivalent
adaptation effort, and check they stay in the same "moderate" order of
magnitude: porting is tens of lines per app, not a rewrite.
"""

import inspect
import re

import pytest

from repro.bench.report import ResultTable

API_PATTERN = re.compile(
    r"amemcpy|amemmove|csync|\babort\(|k_amemcpy|lazy|descriptor|"
    r"_pending_set|_get_was_lazy|on_trap|on_return|client\.")


def _adaptation_loc(module, names=None):
    """Count lines mentioning the Copier API in a module's source."""
    source = inspect.getsource(module)
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith("#") or not stripped:
            continue
        if API_PATTERN.search(stripped):
            count += 1
    return count


def test_table3_adaptation_effort(once):
    import repro.apps.avcodec as avcodec
    import repro.apps.openssllib as openssllib
    import repro.apps.protobuf as protobuf
    import repro.apps.rediskv as rediskv
    import repro.apps.tinyproxy as tinyproxy
    import repro.apps.zlibapp as zlibapp
    import repro.kernel.binder as binder
    import repro.kernel.cow as cow
    import repro.kernel.net as net

    paper = {
        "recv()": 58, "send()": 56, "Redis (SET&GET)": 37,
        "TinyProxy": 27, "Protobuf": 14, "CoW": 42,
        "zlib (deflate)": 18, "OpenSSL": 31, "Binder IPC": 48,
        "Avcodec": 94,
    }

    def run():
        return {
            "recv()": _adaptation_loc(net) // 2,   # net.py holds both
            "send()": _adaptation_loc(net) - _adaptation_loc(net) // 2,
            "Redis (SET&GET)": _adaptation_loc(rediskv),
            "TinyProxy": _adaptation_loc(tinyproxy),
            "Protobuf": _adaptation_loc(protobuf),
            "CoW": _adaptation_loc(cow),
            "zlib (deflate)": _adaptation_loc(zlibapp),
            "OpenSSL": _adaptation_loc(openssllib),
            "Binder IPC": _adaptation_loc(binder),
            "Avcodec": _adaptation_loc(avcodec),
        }

    ours = once(run)
    table = ResultTable(
        "Table 3: adaptation effort (LoC touching the Copier API)",
        ["app/service", "paper LoC", "ours"])
    for name, paper_loc in paper.items():
        table.add(name, paper_loc, ours[name])
    table.show()

    # Moderate effort everywhere: tens of lines, never hundreds.
    for name, loc in ours.items():
        assert 1 <= loc <= 150, (name, loc)
    # Total effort is the same order of magnitude as the paper's ~425.
    assert 50 <= sum(ours.values()) <= 1000
