"""Overload protection: shed-vs-queue tail latency under burst arrivals.

Open-loop bursts at 0.5x and 2x of the engine's sustained drain rate,
under the ``always`` (queue everything, the pre-overload behaviour) and
``deadline-feasible`` (shed what cannot land in time) admission
policies.  The shape claim: below saturation the policies are
indistinguishable; past it, ``always`` queues without bound — per-task
latency grows with the backlog and the watchdog flags the starved
client — while ``deadline-feasible`` bounds the tail by converting the
excess into bounded-latency synchronous sheds.
"""

from repro.bench.report import overload_table, percentile
from repro.bench.workloads import overload_burst

LOADS = (0.5, 2.0)
N_TASKS = 120


def _sweep():
    results = []
    for policy in ("always", "deadline-feasible"):
        for load in LOADS:
            results.append(overload_burst(policy=policy, load=load,
                                          n_tasks=N_TASKS))
    return results


def test_overload_shed_vs_queue(once):
    results = once(_sweep)
    overload_table(results).show()
    by_key = {(r["policy"], r["load"]): r for r in results}

    def p99(res):
        return percentile(res["done_latencies"] + res["shed_latencies"], 0.99)

    # Below saturation both policies admit everything and look identical.
    for load in (0.5,):
        easy_always = by_key[("always", load)]
        easy_df = by_key[("deadline-feasible", load)]
        assert not easy_always["shed_latencies"]
        assert not easy_df["shed_latencies"]
        assert easy_df["overload"]["rejected"] == 0

    over_always = by_key[("always", 2.0)]
    over_df = by_key[("deadline-feasible", 2.0)]

    # 2x load: the queueing policy's tail blows past the feasible
    # policy's by a wide margin (it is unbounded in the open-loop limit).
    assert p99(over_always) > 5 * p99(over_df)

    # Every offered task is still served under deadline-feasible — the
    # excess is shed to the bounded synchronous path, not lost.
    served = (len(over_df["done_latencies"])
              + len(over_df["shed_latencies"]))
    assert served == N_TASKS
    assert over_df["overload"]["shed_tasks"] > 0

    # The watchdog names the starved client in the queueing run.
    wd = over_always["overload"]["watchdog"]
    assert "burst" in wd["starved_clients"]
    assert wd["starvation_alerts"] >= 1
    # ...and stays quiet when the valve keeps the backlog bounded.
    assert over_df["overload"]["watchdog"]["starvation_alerts"] == 0
