"""§4.6: break-even copy sizes for async-copy profitability.

Paper (their Xeon): with sufficient Copy-Use windows Copier beats sync
for kernel copies >=0.3 KB and user copies >=0.5 KB; without windows
(hardware benefit only) the floors rise to >=2 KB kernel / >=12 KB user.
We regenerate the measurement on our substrate and report *its* floors —
the shape requirement is that each floor exists and orders the same way.
"""

import pytest

from repro.bench.report import ResultTable, size_label
from repro.kernel import System
from repro.sim import Compute

SIZES = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536]


def _one_copy(copier, nbytes, window_cycles):
    """Latency of submit→[window work]→csync vs sync copy + same work."""
    system = System(n_cores=3, copier=copier, phys_frames=131072)
    proc = system.create_process("be")
    src = proc.mmap(nbytes, populate=True, contiguous=True)
    dst = proc.mmap(nbytes, populate=True, contiguous=True)

    def gen():
        if copier:
            w = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(w + 512, w, 256)
            yield from proc.client.csync(w + 512, 256)
        total = 0
        rounds = 6
        for _ in range(rounds):
            t0 = system.env.now
            if copier:
                yield from proc.client.amemcpy(dst, src, nbytes)
                if window_cycles:
                    yield Compute(window_cycles)
                yield from proc.client.csync(dst, nbytes)
            else:
                yield from system.sync_copy(proc, proc.aspace, src,
                                            proc.aspace, dst, nbytes,
                                            engine="avx")
                if window_cycles:
                    yield Compute(window_cycles)
            total += system.env.now - t0
        return total / rounds

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return p.result


def _floor(window_fn):
    """Smallest size where Copier beats sync under the given window."""
    for size in SIZES:
        window = window_fn(size)
        sync_lat = _one_copy(False, size, window)
        cop_lat = _one_copy(True, size, window)
        if cop_lat < sync_lat:
            return size
    return None


def test_breakeven_sizes(once):
    params = System(n_cores=1, copier=False).params

    def ample_window(size):
        # 4x the copy time: "sufficient Copy-Use window".
        return 4 * params.cpu_copy_cycles(size, engine="avx")

    def no_window(_size):
        return 0

    def run():
        return _floor(ample_window), _floor(no_window)

    with_window, without_window = once(run)
    table = ResultTable(
        "Break-even user-copy sizes on this substrate (paper's Xeon: "
        ">=0.5KB with windows, >=12KB without)",
        ["condition", "floor"])
    table.add("ample Copy-Use window",
              size_label(with_window) if with_window else "none")
    table.add("no window (hardware only)",
              size_label(without_window) if without_window else "none")
    table.show()

    assert with_window is not None
    assert without_window is not None
    # With a window the floor is small; without, much larger — same
    # ordering as the paper's 0.5 KB vs 12 KB.
    assert with_window <= 4096
    assert without_window >= 2 * with_window
