"""Ablations of Copier's design choices (DESIGN.md experiment index).

Each knob the design section motivates is toggled in isolation:

* segment granularity (§4.1 fine-grained updates);
* piggybacking (§4.3) — measured as DMA on/off in `test_fig12c`;
* copy slice (§4.5.3 scheduler) under two competing clients;
* polling mode (§4.5.1) — latency vs idle-core energy.
"""

import pytest

from repro.bench.report import ResultTable, size_label
from repro.kernel import System
from repro.sim import Compute
from repro.sim.stats import EnergyModel


def _prefix_latency(segment_bytes, n=128 * 1024, prefix=2048):
    """Submit one big copy and time csync of just a prefix."""
    system = System(n_cores=3, copier=True, phys_frames=131072)
    proc = system.create_process("p")
    src = proc.mmap(n, populate=True, contiguous=True)
    dst = proc.mmap(n, populate=True, contiguous=True)

    def gen():
        w = proc.mmap(1024, populate=True)
        yield from proc.client.amemcpy(w + 512, w, 256)
        yield from proc.client.csync(w + 512, 256)
        t0 = system.env.now
        yield from proc.client.amemcpy(dst, src, n,
                                       segment_bytes=segment_bytes)
        yield from proc.client.csync(dst, prefix)
        return system.env.now - t0

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return p.result


def test_segment_granularity(once):
    """Fine segments make the prefix available early; coarse segments
    force waiting for huge chunks (the §4.1 pipeline argument).  Very
    fine segments pay per-segment overhead on total completion."""
    sizes = [512, 1024, 4096, 32768]

    def run():
        return [(s, _prefix_latency(s)) for s in sizes]

    rows = once(run)
    table = ResultTable(
        "Ablation: segment size vs time-to-first-2KB of a 128KB copy",
        ["segment", "prefix latency (cycles)"])
    for seg, lat in rows:
        table.add(size_label(seg), lat)
    table.show()
    by = dict(rows)
    # 1KB segments beat 32KB segments for prefix availability.
    assert by[1024] < by[32768]


def test_copy_slice_fairness(once):
    """Small copy slices interleave two clients fairly; a huge slice lets
    one client's 1MB task starve the other's small sync (§4.5.3)."""
    def run_with_slice(slice_bytes):
        from repro.mem import AddressSpace

        system = System(n_cores=3, copier=True, phys_frames=262144)
        system.copier.scheduler.copy_slice_bytes = slice_bytes
        hog = system.create_process("hog")
        victim = system.create_process("victim")
        big = 1 << 20
        h_src = hog.mmap(big, populate=True)
        h_dst = hog.mmap(big, populate=True)
        v_src = victim.mmap(4096, populate=True)
        v_dst = victim.mmap(4096, populate=True)
        out = {}

        def hog_gen():
            yield from hog.client.amemcpy(h_dst, h_src, big)
            yield from hog.client.csync(h_dst, big)

        def victim_gen():
            yield Compute(500)  # let the hog submit first
            t0 = system.env.now
            yield from victim.client.amemcpy(v_dst, v_src, 2048)
            yield from victim.client.csync(v_dst, 2048)
            out["lat"] = system.env.now - t0

        hp = hog.spawn(hog_gen(), affinity=0)
        vp = victim.spawn(victim_gen(), affinity=1)
        system.env.run_until(vp.terminated, limit=500_000_000_000)
        system.env.run_until(hp.terminated, limit=500_000_000_000)
        return out["lat"]

    small_slice = once(lambda: (run_with_slice(16 * 1024),
                                run_with_slice(4 << 20)))
    small, huge = small_slice
    table = ResultTable(
        "Ablation: copy slice vs competing small client's latency",
        ["copy slice", "victim csync latency (cycles)"])
    table.add("16KB", small)
    table.add("4MB", huge)
    table.show()
    # With bounded slices the victim interleaves quickly; with one giant
    # slice it waits behind (most of) the 1MB hog round.
    assert small < huge


def test_polling_mode_energy_vs_latency(once):
    """NAPI answers faster; scenario-driven saves the idle core (§4.5.1).

    An app does one small copy then idles for a long stretch."""
    def run(polling):
        system = System(n_cores=3, copier=True, phys_frames=65536,
                        copier_kwargs={"polling": polling})
        proc = system.create_process("p")
        src = proc.mmap(4096, populate=True)
        dst = proc.mmap(4096, populate=True)
        out = {}

        def gen():
            if polling == "scenario":
                system.copier.scenario_begin()
            t0 = system.env.now
            yield from proc.client.amemcpy(dst, src, 2048)
            yield from proc.client.csync(dst, 2048)
            out["lat"] = system.env.now - t0
            if polling == "scenario":
                system.copier.scenario_end()
            from repro.sim import Timeout
            yield Timeout(20_000_000)  # long idle stretch

        p = proc.spawn(gen(), affinity=0)
        system.env.run_until(p.terminated, limit=100_000_000_000)
        energy = EnergyModel().energy(system.env.cores)
        return out["lat"], energy

    (napi_lat, napi_energy), (scen_lat, scen_energy) = once(
        lambda: (run("napi"), run("scenario")))
    table = ResultTable(
        "Ablation: polling mode (one 2KB copy + 20M idle cycles)",
        ["mode", "copy latency", "total energy"])
    table.add("NAPI", napi_lat, napi_energy)
    table.add("scenario-driven", scen_lat, scen_energy)
    table.show()
    # Both complete promptly; the sleeping service never costs more
    # energy over the idle stretch.
    assert scen_energy <= napi_energy * 1.02
    assert napi_lat <= scen_lat * 1.5 + 2000
