"""Fig. 7-a: raw copy-engine throughput by size.

Paper's shape: AVX2 > ERMS everywhere; DMA starts far below both (submit
overhead) and crosses ERMS around 4 KB, remaining below AVX2.
"""

from repro.bench.report import ResultTable, size_label
from repro.hw import CopyTimingModel, MachineParams

SIZES = [256, 512, 1024, 2048, 4096, 8192, 16384, 65536, 262144, 1048576]


def test_fig7a_engine_throughput(once):
    model = CopyTimingModel(MachineParams())

    def run():
        rows = []
        for size in SIZES:
            rows.append((
                size,
                model.cpu_throughput(size, "erms"),
                model.cpu_throughput(size, "avx"),
                model.dma_throughput(size),
            ))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 7-a: engine throughput (bytes/cycle); paper: DMA 'excels at "
        "large copies (>=4KB)', slower than AVX2 everywhere",
        ["size", "ERMS", "AVX2", "DMA"])
    for size, erms, avx, dma in rows:
        table.add(size_label(size), erms, avx, dma)
    table.show()

    by_size = {r[0]: r for r in rows}
    # AVX2 dominates ERMS at every size.
    assert all(r[2] > r[1] for r in rows)
    # DMA loses to AVX2 everywhere (it wins by being off-CPU, not faster).
    assert all(r[3] < r[2] for r in rows)
    # DMA below ERMS for small copies, above from ~4KB (the crossover).
    assert by_size[1024][3] < by_size[1024][1]
    assert by_size[4096][3] >= by_size[4096][1]
    crossover = CopyTimingModel(MachineParams()).crossover_size()
    assert 2048 <= crossover <= 8192


def test_fig7b_subtask_division(once):
    """Fig. 7-b: non-contiguous physical pages divide a task into
    page-sized subtasks; contiguous pages form multi-page DMA runs."""
    from repro.copier.deps import PendingTasks, u_order_key
    from repro.copier.descriptor import Descriptor
    from repro.copier.dispatch import Dispatcher
    from repro.copier.task import CopyTask, Region
    from repro.mem import PAGE_SIZE, AddressSpace, PhysicalMemory

    def plan_for(fragmented):
        phys = PhysicalMemory(512, fragmented=fragmented)
        aspace = AddressSpace(phys)
        n = 64 * 1024
        src = aspace.mmap(n, populate=True, contiguous=not fragmented)
        dst = aspace.mmap(n, populate=True, contiguous=not fragmented)
        task = CopyTask(None, "u", Region(aspace, src, n),
                        Region(aspace, dst, n), Descriptor(n, 1024))
        task.order_key = u_order_key(0)
        pending = PendingTasks()
        pending.add(task)
        return Dispatcher(MachineParams()).build_round(pending, n)

    frag, contig = once(lambda: (plan_for(True), plan_for(False)))
    table = ResultTable("Fig 7-b: hybrid subtasks under fragmentation",
                        ["layout", "dma runs", "max run", "dma bytes"])
    for name, plan in (("fragmented", frag), ("contiguous", contig)):
        max_run = max((r.nbytes for r in plan.dma_runs), default=0)
        table.add(name, len(plan.dma_runs), max_run, plan.dma_bytes)
    table.show()
    assert max((r.nbytes for r in frag.dma_runs), default=0) <= 4096
    assert max(r.nbytes for r in contig.dma_runs) > 4096
