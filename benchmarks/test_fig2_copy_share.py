"""Fig. 2: cycle proportion of copy across apps and OS scenarios.

Paper: copy consumes 16-66 % of cycles across Redis/zlib/OpenSSL/Nginx/
libpng/ffmpeg on Linux (Fig. 2-a) and 3-49 % across HarmonyOS scenarios
(Fig. 2-b).  We regenerate the measurement on the baseline (sync) builds
of our miniature apps: copy share = (copy + fault-copy cycles) / total
cycles of the serving process.
"""

import pytest

from repro.apps.avcodec import VideoDecoder
from repro.apps.openssllib import SSLReader, encrypt
from repro.apps.protobuf import ProtobufReceiver, serialize
from repro.apps.rediskv import run_benchmark
from repro.apps.tinyproxy import run_forwarding
from repro.apps.zlibapp import Deflater
from repro.bench.report import ResultTable, size_label
from repro.hw.params import phone_params
from repro.kernel import System
from repro.kernel.net import send, socket_pair

COPY_TAGS = ("copy",)


def _share(system, pid):
    stats = system.env.stats
    total = stats.total_cycles(pid=pid)
    copy = sum(stats.total_cycles(pid=pid, tag=t) for t in COPY_TAGS)
    return copy / total if total else 0.0


def _redis_share(op, value_len):
    system = System(n_cores=4, copier=False, phys_frames=131072)
    server, _merged, _elapsed = run_benchmark(system, "sync", op, value_len,
                                              n_requests=10, n_clients=2)
    return _share(system, server.proc.sim_proc.pid)


def _proxy_share(msg):
    system = System(n_cores=4, copier=False, phys_frames=131072)
    _t, _e, proxies, _ = run_forwarding(system, "sync", msg, n_messages=8)
    return _share(system, proxies[0].proc.sim_proc.pid)


def _zlib_share(nbytes):
    system = System(n_cores=3, copier=False, phys_frames=131072)
    deflater = Deflater(system, mode="sync")
    p = deflater.proc.spawn(deflater.deflate(b"a1b2" * (nbytes // 4)),
                            affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return _share(system, p.pid)


def _openssl_share(nbytes):
    system = System(n_cores=3, copier=False, phys_frames=131072)
    reader = SSLReader(system, mode="sync")
    sender = system.create_process("s")
    a, b = socket_pair(system)
    buf = sender.mmap(nbytes, populate=True)
    sender.write(buf, encrypt(b"\x00" * nbytes))

    def feed():
        pos = 0
        while pos < nbytes:
            rec = min(16 * 1024, nbytes - pos)
            yield from send(system, sender, a, buf + pos, rec)
            pos += rec

    sender.spawn(feed(), affinity=1)
    p = reader.proc.spawn(reader.ssl_read(b, nbytes), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return _share(system, p.pid)


def _png_share(nbytes):
    from repro.apps.pngapp import PNGDecoder, encode_image
    from repro.kernel.fileio import FileObject

    system = System(n_cores=3, copier=False, phys_frames=131072)
    raw = bytes([(i * 7) % 251 for i in range(nbytes)])
    fobj = FileObject(system, encode_image(raw))
    decoder = PNGDecoder(system, mode="sync")
    p = decoder.proc.spawn(decoder.decode_file(fobj), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return _share(system, p.pid)


def _avcodec_share():
    system = System(n_cores=3, params=phone_params(), copier=False,
                    phys_frames=131072)
    decoder = VideoDecoder(system, mode="sync", frame_bytes=1 << 20)
    p = decoder.proc.spawn(decoder.decode_stream(4), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return _share(system, p.pid)


def test_fig2a_linux_apps(once):
    def run():
        rows = []
        for size in (16 * 1024, 256 * 1024):
            rows.append(("Redis SET %s" % size_label(size),
                         _redis_share("SET", size)))
            rows.append(("Redis GET %s" % size_label(size),
                         _redis_share("GET", size)))
        rows.append(("proxy fwd 16KB", _proxy_share(16 * 1024)))
        rows.append(("zlib 64KB", _zlib_share(64 * 1024)))
        rows.append(("OpenSSL 64KB", _openssl_share(64 * 1024)))
        rows.append(("libpng 64KB", _png_share(64 * 1024)))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 2-a: copy cycle share on Linux apps (paper: 16-66%)",
        ["app", "copy share"])
    for name, share in rows:
        table.add(name, "%.0f%%" % (share * 100))
    table.show()
    shares = [s for _n, s in rows]
    # Copy is a major cost: double-digit share for each app...
    assert all(0.05 < s < 0.85 for s in shares), shares
    # ...and dominant (>30%) for the most copy-bound ones.
    assert max(shares) > 0.30


def _recorder_share():
    from repro.apps.avcodec import VideoRecorder

    system = System(n_cores=3, params=phone_params(), copier=False,
                    phys_frames=131072)
    recorder = VideoRecorder(system, mode="sync", frame_bytes=1 << 20)
    p = recorder.proc.spawn(recorder.record(4), affinity=0)
    system.env.run_until(p.terminated, limit=2_000_000_000_000)
    return _share(system, p.pid)


def test_fig2b_phone_scenario(once):
    playback, recording = once(lambda: (_avcodec_share(),
                                        _recorder_share()))
    table = ResultTable(
        "Fig 2-b: copy cycle share, HarmonyOS scenarios "
        "(paper: 3-49% across scenarios; camera recording 6-16%)",
        ["scenario", "copy share"])
    table.add("video playback", "%.0f%%" % (playback * 100))
    table.add("camera recording", "%.0f%%" % (recording * 100))
    table.show()
    assert 0.02 < playback < 0.60
    assert 0.02 < recording < 0.60
