"""§2.2's motivation: real request-size mixes are dominated by small and
medium copies, where remap-based zero-copy cannot help.

The paper cites production traces: 95.1 % of Twitter memcached requests
are ≤10 KB and 69.8 % of AliCloud block requests are ≤10 KB.  We drive
the Redis server with a synthetic mix matching the Twitter distribution's
shape and compare Copier against zIO across the *whole mix* — the regime
argument for why copy needs a general service rather than a large-copy
special case.
"""

import pytest

from repro.apps.rediskv import RedisClient, RedisServer
from repro.bench.report import ResultTable, improvement
from repro.kernel import System
from repro.kernel.net import socket_pair

from repro.bench.distributions import TWITTER_CACHE


def _mix_ops(n_total):
    sizes = TWITTER_CACHE.sequence(n_total)
    return [("SET", b"key-%06d" % (i % 16), size)
            for i, size in enumerate(sizes)]


def _run_mix(mode, n_requests=60):
    system = System(n_cores=4, copier=(mode == "copier"),
                    phys_frames=262144)
    server = RedisServer(system, mode=mode)
    listen_rx, listen_tx = socket_pair(system)
    ra, rb = socket_pair(system)
    client = RedisClient(system, 0, listen_tx, rb)
    ops = _mix_ops(n_requests)
    server.proc.spawn(server.serve(listen_rx, {0: ra}, len(ops)),
                      affinity=0)
    cp = client.proc.spawn(client.run(ops), affinity=1)
    system.env.run_until(cp.terminated, limit=2_000_000_000_000)
    return client.latency.mean, client.latency.p99


def test_trace_shaped_mix(once):
    def run():
        return {mode: _run_mix(mode) for mode in ("sync", "copier", "zio")}

    results = once(run)
    table = ResultTable(
        "Twitter-shaped SET mix (95% <=10KB): mean/P99 latency — why a "
        "general copy service beats large-copy-only zero-copy (§2.2)",
        ["mode", "mean", "p99"])
    for mode, (mean, p99) in results.items():
        table.add(mode, mean, p99)
    table.show()

    sync_mean, _ = results["sync"]
    cop_mean, cop_p99 = results["copier"]
    zio_mean, _ = results["zio"]
    # Copier helps the whole mix; zIO cannot (its threshold excludes ~95%
    # of requests, and input-buffer reuse penalizes the rest).
    assert cop_mean < sync_mean
    assert cop_mean < zio_mean
    # The mix's small-request majority means the aggregate gain is
    # moderate — but positive, unlike the remap-based baseline.
    gain = improvement(sync_mean, cop_mean)
    assert 0.0 < gain < 0.5, gain
