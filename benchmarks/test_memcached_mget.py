"""Extension bench: memcached-style multi-get gather (§5.1.1 web servers).

Not a paper figure — an extension exercising the scatter-gather copy
pattern at the intersection of per-thread queues and absorption: one
reply concatenates N values, and Copier collapses the N user copies plus
the send copy into N short-circuits straight to the socket buffer.
"""

import pytest

from repro.apps.memcachedapp import run_memcached
from repro.bench.report import ResultTable, improvement
from repro.kernel import System


def test_multiget_latency_and_absorption(once):
    configs = [(4, 4096), (4, 16384), (8, 16384)]

    def run():
        rows = []
        for n_keys, value_len in configs:
            res = {}
            for mode in ("sync", "copier"):
                system = System(n_cores=4, copier=(mode == "copier"),
                                phys_frames=262144)
                server, mean, _elapsed = run_memcached(
                    system, mode, value_len=value_len, n_keys=n_keys,
                    n_requests=6, n_workers=2)
                absorbed = 0
                if mode == "copier":
                    absorbed = sum(c.stats.bytes_absorbed
                                   for c in system.copier.clients)
                res[mode] = (mean, absorbed)
            rows.append((n_keys, value_len, res))
        return rows

    rows = once(run)
    table = ResultTable(
        "memcached multi-get: gather of N values into one reply",
        ["keys", "value", "baseline", "Copier", "gain", "absorbed KB"])
    for n_keys, value_len, res in rows:
        base, _ = res["sync"]
        cop, absorbed = res["copier"]
        table.add(n_keys, value_len, base, cop,
                  "%.1f%%" % (improvement(base, cop) * 100),
                  "%.0f" % (absorbed / 1024))
    table.show()

    for n_keys, value_len, res in rows:
        base, _ = res["sync"]
        cop, absorbed = res["copier"]
        assert cop < base, (n_keys, value_len)
        # The gather was mostly short-circuited.
        assert absorbed > 0
    # Bigger gathers absorb more and keep winning.
    first_gain = improvement(rows[0][2]["sync"][0], rows[0][2]["copier"][0])
    last_gain = improvement(rows[-1][2]["sync"][0], rows[-1][2]["copier"][0])
    assert last_gain > 0.05
