"""§6.3.5: microarchitectural impact — CPI of copy-irrelevant code.

Paper: offloading large copies to Copier's core stops them evicting the
app's hot working set, cutting the CPI of copy-irrelevant code by 4-16 %
for SETs and 6-9 % for GETs (4-64 KB values).
"""

import pytest

from repro.apps.rediskv import run_benchmark
from repro.bench.report import ResultTable, improvement, size_label
from repro.kernel import System

#: Tags that are *not* copy or polling work (the paper removes copy and
#: polling cycles before computing CPI).
EXCLUDE = ("copy", "poll", "copier-copy", "csync", "copier-submit",
           "copier-mgmt", "fault", "handler")


def _cpi(mode, op, value_len):
    system = System(n_cores=4, copier=(mode == "copier"),
                    phys_frames=262144)
    server, _m, _e = run_benchmark(system, mode, op, value_len,
                                   n_requests=12, n_clients=2)
    pid = server.proc.sim_proc.pid
    return system.env.stats.cpi(pid=pid, exclude_tags=EXCLUDE)


@pytest.mark.parametrize("op", ["SET", "GET"])
def test_cpi_of_copy_irrelevant_code(once, op):
    sizes = [16 * 1024, 65536]

    def run():
        return [(s, _cpi("sync", op, s), _cpi("copier", op, s))
                for s in sizes]

    rows = once(run)
    table = ResultTable(
        "CPI of copy-irrelevant Redis %s code (paper: Copier -4..-16%% "
        "SET / -6..-9%% GET)" % op,
        ["size", "baseline CPI", "Copier CPI", "reduction"])
    gains = []
    for size, base, cop in rows:
        gains.append(improvement(base, cop))
        table.add(size_label(size), base, cop, "%.1f%%" % (gains[-1] * 100))
    table.show()

    # Copier reduces CPI at every size (less cache pollution), modestly.
    assert all(0.0 <= g < 0.25 for g in gains), gains
    assert max(gains) > 0.01
