"""Fig. 10: average send()/recv() syscall latency across optimizations.

Paper's shape: Copier cuts send latency 7-37 % and recv 16-92 % vs normal
syscalls; io_uring batching helps both and composes with Copier; UB's
benefit fades as size grows; zero-copy send only wins for large payloads.
"""

import pytest

from repro.bench.report import ResultTable, improvement, size_label
from repro.bench.workloads import syscall_latency

SIZES = [1024, 4096, 16384, 65536]


def _sweep(op):
    rows = []
    for size in SIZES:
        base = syscall_latency(op, "sync", size)
        copier = syscall_latency(op, "copier", size)
        ub = syscall_latency(op, "ub", size)
        iour = syscall_latency(op, "sync", size, batch=1)  # plain io_uring
        batch = syscall_latency(op, "sync", size, batch=16)
        copier_batch = syscall_latency(op, "copier", size, batch=16)
        row = {"size": size, "base": base, "copier": copier, "ub": ub,
               "iour": iour, "iour_batch": batch,
               "copier_batch": copier_batch}
        if op == "send" and size % 4096 == 0:
            row["zerocopy"] = syscall_latency(op, "zerocopy", size)
        rows.append(row)
    return rows


def test_fig10_send_latency(once):
    rows = once(lambda: _sweep("send"))
    table = ResultTable(
        "Fig 10 send(): avg latency (cycles); paper: Copier -7..-37%, "
        "-27..-59% with batching; io_uring alone doesn't cut execution "
        "time; zerocopy wins only for large",
        ["size", "base", "Copier", "UB", "IOR", "IOR-b", "Copier+b", "zc"])
    for r in rows:
        table.add(size_label(r["size"]), r["base"], r["copier"], r["ub"],
                  r["iour"], r["iour_batch"], r["copier_batch"],
                  r.get("zerocopy", "-"))
    table.show()

    for r in rows:
        if r["size"] >= 4096:
            assert r["copier"] < r["base"], r
            assert r["copier_batch"] < r["iour_batch"], r
        # Plain io_uring doesn't reduce the syscall's execution latency
        # (§6.1.2): within ~one trap's worth of the baseline.
        assert abs(r["iour"] - r["base"]) < 800, r
    # UB's advantage shrinks with size (copy dominates).
    ub_gain = [improvement(r["base"], r["ub"]) for r in rows]
    assert ub_gain[0] > ub_gain[-1]
    # Zero-copy send: loses small, wins large (paper: >=32KB).
    small = next(r for r in rows if r["size"] == 4096)
    large = next(r for r in rows if r["size"] == 65536)
    assert small["zerocopy"] > small["base"]
    assert large["zerocopy"] < large["base"]


def test_fig10_recv_latency(once):
    rows = once(lambda: _sweep("recv"))
    table = ResultTable(
        "Fig 10 recv(): avg latency (cycles); paper: Copier -16..-92%, "
        "-55..-93% with batching",
        ["size", "base", "Copier", "UB", "IOR", "IOR-b", "Copier+b"])
    for r in rows:
        table.add(size_label(r["size"]), r["base"], r["copier"], r["ub"],
                  r["iour"], r["iour_batch"], r["copier_batch"])
    table.show()

    for r in rows:
        if r["size"] >= 4096:
            assert r["copier"] < r["base"], r
    # recv benefits more than send at large sizes: the whole copy leaves
    # the syscall path (paper: up to -92% vs -37%).
    recv_gain = improvement(rows[-1]["base"], rows[-1]["copier"])
    assert recv_gain > 0.3
