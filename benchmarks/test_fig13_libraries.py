"""Fig. 13 (+ §6.2.3 zlib): libraries and the smartphone scenario.

* (a) Protobuf: receive+deserialize latency, Copier −4..−33 %;
* (b) OpenSSL SSL_read (AES-GCM): −1.4..−8.4 %, flat past the 16 KB TLS
  record cap;
* (c) HarmonyOS Avcodec: −3..−10 % frame latency at ≤ +0.29 % energy;
* zlib deflate_fast: up to 18.8 % for inputs ≤ 256 KB.
"""

import pytest

from repro.apps.avcodec import VideoDecoder, measure_energy
from repro.apps.openssllib import SSLReader, encrypt
from repro.apps.protobuf import ProtobufReceiver, serialize
from repro.apps.zlibapp import Deflater
from repro.bench.report import ResultTable, improvement, size_label
from repro.hw.params import phone_params
from repro.kernel import System
from repro.kernel.net import send, socket_pair


def _protobuf_latency(mode, msg_bytes):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=131072)
    rx_side, tx_side = socket_pair(system)
    n_fields = max(1, msg_bytes // 1024)
    payload = serialize([b"p" * 1020] * n_fields)
    sender = system.create_process("s")
    buf = sender.mmap(len(payload), populate=True)
    sender.write(buf, payload)

    def feed():
        yield from send(system, sender, tx_side, buf, len(payload))

    sender.spawn(feed(), affinity=1)
    receiver = ProtobufReceiver(system, mode=mode)
    p = receiver.proc.spawn(
        receiver.recv_and_deserialize(rx_side, len(payload)), affinity=0)
    system.env.run_until(p.terminated, limit=50_000_000_000)
    return p.result[0]


def _openssl_latency(mode, nbytes):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=131072)
    rx_side, tx_side = socket_pair(system)
    sender = system.create_process("s")
    buf = sender.mmap(nbytes, populate=True)
    sender.write(buf, encrypt(b"\x00" * nbytes))

    def feed():
        pos = 0
        while pos < nbytes:
            rec = min(16 * 1024, nbytes - pos)
            yield from send(system, sender, tx_side, buf + pos, rec)
            pos += rec

    sender.spawn(feed(), affinity=1)
    reader = SSLReader(system, mode=mode)
    p = reader.proc.spawn(reader.ssl_read(rx_side, nbytes), affinity=0)
    system.env.run_until(p.terminated, limit=100_000_000_000)
    return p.result[0]


def _zlib_latency(mode, nbytes):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=131072)
    deflater = Deflater(system, mode=mode)
    data = bytes([(i * 13) % 251 for i in range(nbytes)])
    p = deflater.proc.spawn(deflater.deflate(data), affinity=0)
    system.env.run_until(p.terminated, limit=200_000_000_000)
    return p.result[0]


def _avcodec(mode, n_frames=8):
    system = System(n_cores=3, params=phone_params(),
                    copier=(mode == "copier"),
                    copier_kwargs={"polling": "scenario"},
                    phys_frames=131072)
    decoder = VideoDecoder(system, mode=mode, frame_bytes=1 << 20)
    p = decoder.proc.spawn(decoder.decode_stream(n_frames), affinity=0)
    system.env.run_until(p.terminated, limit=2_000_000_000_000)
    return decoder, measure_energy(system)


def test_fig13a_protobuf(once):
    sizes = [4096, 16384, 65536]

    def run():
        return [(s, _protobuf_latency("sync", s),
                 _protobuf_latency("copier", s)) for s in sizes]

    rows = once(run)
    table = ResultTable(
        "Fig 13-a Protobuf recv+deserialize latency (paper: -4..-33%)",
        ["size", "baseline", "Copier", "improvement"])
    gains = []
    for size, base, cop in rows:
        gains.append(improvement(base, cop))
        table.add(size_label(size), base, cop, "%.1f%%" % (gains[-1] * 100))
    table.show()
    assert all(g > 0 for g in gains), gains
    assert 0.04 < max(gains) < 0.5, gains


def test_fig13b_openssl(once):
    sizes = [4096, 16384, 65536, 262144]

    def run():
        return [(s, _openssl_latency("sync", s),
                 _openssl_latency("copier", s)) for s in sizes]

    rows = once(run)
    table = ResultTable(
        "Fig 13-b OpenSSL SSL_read latency (paper: -1.4..-8.4%, flat "
        ">=16KB due to the TLS record cap)",
        ["size", "baseline", "Copier", "improvement"])
    gains = {}
    for size, base, cop in rows:
        gains[size] = improvement(base, cop)
        table.add(size_label(size), base, cop,
                  "%.1f%%" % (gains[size] * 100))
    table.show()
    assert all(g > 0 for g in gains.values()), gains
    assert max(gains.values()) < 0.25  # modest: decrypt dominates
    # Flat beyond the record cap.
    assert abs(gains[262144] - gains[16384]) < 0.06


def test_fig13_zlib(once):
    sizes = [65536, 262144]

    def run():
        return [(s, _zlib_latency("sync", s), _zlib_latency("copier", s))
                for s in sizes]

    rows = once(run)
    table = ResultTable(
        "zlib deflate_fast latency (paper: up to 18.8% for <=256KB)",
        ["size", "baseline", "Copier", "speedup"])
    gains = []
    for size, base, cop in rows:
        gains.append(improvement(base, cop))
        table.add(size_label(size), base, cop, "%.1f%%" % (gains[-1] * 100))
    table.show()
    assert all(g > 0 for g in gains)
    assert max(gains) < 0.35


def test_fig13c_avcodec_phone(once):
    def run():
        sync_dec, sync_energy = _avcodec("sync")
        cop_dec, cop_energy = _avcodec("copier")
        return sync_dec, sync_energy, cop_dec, cop_energy

    sync_dec, sync_energy, cop_dec, cop_energy = once(run)
    latency_gain = improvement(sync_dec.mean_latency, cop_dec.mean_latency)
    energy_delta = cop_energy / sync_energy - 1
    table = ResultTable(
        "Fig 13-c Avcodec on the phone profile (paper: -3..-10% frame "
        "latency, +0.07..+0.29% energy, scenario-driven polling)",
        ["metric", "baseline", "Copier", "delta"])
    table.add("frame latency", sync_dec.mean_latency, cop_dec.mean_latency,
              "%.1f%%" % (-latency_gain * 100))
    table.add("energy", sync_energy, cop_energy,
              "%+.2f%%" % (energy_delta * 100))
    table.add("dropped frames", sync_dec.dropped, cop_dec.dropped, "-")
    table.show()

    assert 0.0 < latency_gain < 0.30
    assert energy_delta < 0.10  # scenario-driven polling keeps energy flat
    assert cop_dec.dropped <= sync_dec.dropped
