"""§6.1.2 Binder IPC: end-to-end latency, n strings of 1 KB.

Paper: Copier reduces the average end-to-end latency by 9.6-35.5 % for
n = 10-800 (client sends n 1 KB strings, server reads them one by one,
then replies).
"""

import pytest

from repro.bench.report import ResultTable, improvement
from tests.kernel.test_binder import _run_binder

NS = [10, 50, 200, 400]


def test_binder_latency_sweep(once):
    def run():
        rows = []
        for n in NS:
            base, _r, _rb, _m = _run_binder(False, n)
            cop, _r, _rb, _m = _run_binder(True, n)
            rows.append((n, base, cop))
        return rows

    rows = once(run)
    table = ResultTable(
        "Binder IPC: end-to-end latency (cycles), n x 1KB strings "
        "(paper: Copier -9.6%..-35.5% for n=10-800)",
        ["n", "baseline", "Copier", "improvement"])
    gains = []
    for n, base, cop in rows:
        gain = improvement(base, cop)
        gains.append(gain)
        table.add(n, base, cop, "%.1f%%" % (gain * 100))
    table.show()

    assert all(g > 0 for g in gains), gains
    assert max(gains) > 0.08
    assert max(gains) < 0.60  # sane magnitude


def test_binder_pipelining_is_the_mechanism(once):
    """The win comes from reading early strings while later ones copy:
    first-read latency is far below last-read latency."""
    from repro.kernel import BinderNode, System
    from repro.kernel.binder import parcel_read, reply, transact
    from repro.sim import WaitEvent

    def run():
        system = System(n_cores=3, copier=True, phys_frames=65536)
        client = system.create_process("c")
        server = system.create_process("s")
        n = 128
        node = BinderNode(system, server, buffer_bytes=1 << 20)
        msg_va = client.mmap(n * 1024, populate=True)
        client.write(msg_va, b"\x44" * (n * 1024))
        marks = {}

        def server_loop():
            yield WaitEvent(node.wait_transaction())
            txn = node.queue.popleft()
            t0 = system.env.now
            yield from parcel_read(system, server, node, txn, 0, 1024)
            marks["first"] = system.env.now - t0
            for i in range(1, n):
                yield from parcel_read(system, server, node, txn,
                                       i * 1024, 1024)
            marks["all"] = system.env.now - t0
            yield from reply(system, server, txn, b"OK")

        def client_loop():
            w = client.mmap(1024, populate=True)
            yield from client.client.amemcpy(w + 512, w, 256)
            yield from client.client.csync(w + 512, 256)
            yield from transact(system, client, node, msg_va, n * 1024,
                                mode="copier")

        server.spawn(server_loop(), affinity=1)
        cp = client.spawn(client_loop(), affinity=0)
        system.env.run_until(cp.terminated, limit=50_000_000_000)
        return marks

    marks = once(run)
    table = ResultTable("Binder pipelining (copier, 128 x 1KB)",
                        ["event", "cycles from first read"])
    table.add("first string readable", marks["first"])
    table.add("all strings read", marks["all"])
    table.show()
    assert marks["first"] < marks["all"] / 10
