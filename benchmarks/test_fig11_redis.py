"""Fig. 11: Redis GET/SET latency, P99 and throughput vs all baselines.

Paper: Copier cuts average latency 2.7-43.4 % (SET) / 4.2-42.5 % (GET),
P99 5.9-33.4 % / 5.6-47.8 %, lifts throughput 2.4-50 % / 4.2-32 %.  zIO
only helps GETs (one user copy removed, up to 20 %) and large SETs
(>=64 KB, page faults from the recycled input buffer otherwise); UB only
helps small requests; zero-copy send needs >=32 KB.
"""

import pytest

from repro.apps.rediskv import run_benchmark
from repro.bench.report import (ResultTable, improvement, size_label,
                                speedup, stage_breakdown_table)
from repro.kernel import System
from repro.tools import copierstat

SIZES = [4096, 16384, 65536]
N_REQ = 12
N_CLIENTS = 4


def _run(mode, op, value_len, stats_out=None):
    system = System(n_cores=4, copier=(mode == "copier"),
                    phys_frames=262144)
    _server, merged, elapsed = run_benchmark(
        system, mode, op, value_len, n_requests=N_REQ, n_clients=N_CLIENTS)
    if stats_out is not None and system.copier is not None:
        stats_out.append(system.copier.stats_snapshot())
    return merged.mean, merged.p99, merged.count / elapsed


@pytest.mark.parametrize("op", ["SET", "GET"])
def test_fig11_redis(once, op):
    def run():
        rows = []
        snaps = []
        for size in SIZES:
            data = {}
            for mode in ("sync", "copier", "zio", "ub"):
                out = snaps if size == SIZES[-1] else None
                data[mode] = _run(mode, op, size, stats_out=out)
            rows.append((size, data))
        return rows, snaps[-1]

    rows, copier_snap = once(run)
    table = ResultTable(
        "Fig 11 Redis %s: mean latency (cycles) [paper: Copier "
        "-2.7..-43.4%% SET / -4.2..-42.5%% GET]" % op,
        ["size", "baseline", "Copier", "zIO", "UB", "Cop mean", "Cop P99",
         "Cop tput"])
    for size, data in rows:
        base_mean, base_p99, base_tput = data["sync"]
        cop_mean, cop_p99, cop_tput = data["copier"]
        table.add(size_label(size), base_mean, cop_mean,
                  data["zio"][0], data["ub"][0],
                  "%+.1f%%" % (-improvement(base_mean, cop_mean) * 100),
                  "%+.1f%%" % (-improvement(base_p99, cop_p99) * 100),
                  "%+.1f%%" % ((speedup(base_tput, cop_tput) - 1) * 100))
    table.show()

    # Per-stage latency breakdown for the Copier run at the largest size,
    # sourced from the trace bus (submit -> ingest -> execute -> complete).
    stages = copier_snap["stages"]
    stage_breakdown_table(
        stages, "Fig 11 Redis %s @ %s: copy-path stage latency"
        % (op, size_label(SIZES[-1]))).show()
    breakdown = copierstat.render_stages(stages)
    assert any("submit→complete" in line for line in breakdown)
    assert stages["stages"]["submit_to_complete"]["count"] > 0
    assert stages["outcomes"].get("done", 0) > 0

    for size, data in rows:
        base_mean, base_p99, base_tput = data["sync"]
        cop_mean, cop_p99, cop_tput = data["copier"]
        # Copier wins on all three metrics at every plotted size.
        assert cop_mean < base_mean, (op, size)
        assert cop_p99 < base_p99 * 1.05, (op, size)
        assert cop_tput > base_tput * 0.98, (op, size)
        # Copier beats zIO and UB (the 1.6x-over-zIO headline).
        assert cop_mean < data["zio"][0], (op, size)
        assert cop_mean < data["ub"][0], (op, size)
    # Peak improvement lands in the paper's band.
    best = max(improvement(d["sync"][0], d["copier"][0]) for _s, d in rows)
    assert 0.10 < best < 0.60, best


def test_fig11_zio_behaviour(once):
    """zIO's asymmetry: helps GETs, hurts/neutral on mid-size SETs."""
    def run():
        get_base = _run("sync", "GET", 16384)[0]
        get_zio = _run("zio", "GET", 16384)[0]
        set_base = _run("sync", "SET", 16384)[0]
        set_zio = _run("zio", "SET", 16384)[0]
        return get_base, get_zio, set_base, set_zio

    get_base, get_zio, set_base, set_zio = once(run)
    table = ResultTable("Fig 11 inset: zIO vs baseline at 16KB",
                        ["op", "baseline", "zIO", "delta"])
    table.add("GET", get_base, get_zio,
              "%+.1f%%" % (-improvement(get_base, get_zio) * 100))
    table.add("SET", set_base, set_zio,
              "%+.1f%%" % (-improvement(set_base, set_zio) * 100))
    table.show()
    assert get_zio < get_base            # one user copy removed
    assert set_zio > set_base * 0.97     # no win: input buffer faults


def test_fig11_zerocopy_send_threshold(once):
    """Zero-copy send only pays off for large GET replies (paper: >=32KB)."""
    def run():
        small_base = _run("sync", "GET", 16384)[0]
        small_zc = _run("zerocopy", "GET", 16384)[0]
        large_base = _run("sync", "GET", 65536)[0]
        large_zc = _run("zerocopy", "GET", 65536)[0]
        return small_base, small_zc, large_base, large_zc

    small_base, small_zc, large_base, large_zc = once(run)
    table = ResultTable("Zero-copy send() on Redis GET replies",
                        ["size", "baseline", "MSG_ZEROCOPY"])
    table.add("16KB", small_base, small_zc)
    table.add("64KB", large_base, large_zc)
    table.show()
    assert large_zc < large_base
    # At 16KB the pin/flush/reap overhead roughly cancels the copy.
    assert small_zc > large_zc * 0.5
