"""Fig. 14: whole-system resource utilization with 4 cores.

Paper: with idle cores Copier improves both latency and throughput; when
all 4 cores are busy (enough Redis instances), Copier still cuts request
latency (-17..-19 %) but loses a little throughput (-4..-7 %) to task
submission and polling — the dedicated-core trade-off of §4.6.
"""

import pytest

from repro.apps.rediskv import run_benchmark
from repro.bench.report import ResultTable, improvement, speedup
from repro.kernel import System

VALUE = 16 * 1024
N_REQ = 10


def _run_instances(mode, n_instances):
    """n Redis instances on a 4-core budget (Copier takes core 3).

    Load generators (clients) run on extra cores 4-5, standing in for the
    paper's separate client machines: the 4-core limit applies to the
    system under test.
    """
    copier = mode == "copier"
    system = System(n_cores=6, copier=copier, phys_frames=262144,
                    timeslice=20_000,
                    copier_kwargs={"dedicated_cores": [3]} if copier else None)
    # App cores are 0..2 for Copier (core 3 dedicated) or 0..3 baseline.
    app_cores = 3 if copier else 4
    from repro.apps import rediskv

    runs = []
    for i in range(n_instances):
        server = rediskv.RedisServer(system, mode=mode,
                                     name="redis-%d" % i)
        from repro.kernel.net import socket_pair
        listen_rx, listen_tx = socket_pair(system)
        reply_socks = {}
        clients = []
        for cid in range(2):
            ra, rb = socket_pair(system)
            reply_socks[cid] = ra
            clients.append(rediskv.RedisClient(system, cid, listen_tx, rb,
                                               name="cl-%d" % i))
        total = N_REQ * 2
        server.proc.spawn(server.serve(listen_rx, reply_socks, total),
                          affinity=i % app_cores)
        procs = []
        for cid, client in enumerate(clients):
            ops = [("SET", b"k%d" % i, VALUE)] * N_REQ
            procs.append(client.proc.spawn(
                client.run(ops), affinity=4 + (i * 2 + cid) % 2))
        runs.append((server, clients, procs))
    t0 = system.env.now
    for _server, _clients, procs in runs:
        for p in procs:
            system.env.run_until(p.terminated, limit=2_000_000_000_000)
    elapsed = system.env.now - t0
    all_lat = []
    count = 0
    for _server, clients, _procs in runs:
        for c in clients:
            all_lat.extend(c.latency.samples)
            count += c.latency.count
    mean_lat = sum(all_lat) / len(all_lat)
    throughput = count / elapsed
    return mean_lat, throughput


def test_fig14_four_core_saturation(once):
    def run():
        rows = []
        for n in (1, 2, 4):
            base = _run_instances("sync", n)
            cop = _run_instances("copier", n)
            rows.append((n, base, cop))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 14: Redis SET 16KB on 4 cores (paper: latency improves even "
        "saturated; throughput dips -4..-7% when all cores busy)",
        ["instances", "BL lat", "Cop lat", "lat delta",
         "BL tput", "Cop tput", "tput delta"])
    for n, (bl_lat, bl_tp), (cp_lat, cp_tp) in rows:
        table.add(n, bl_lat, cp_lat,
                  "%+.1f%%" % (-improvement(bl_lat, cp_lat) * 100),
                  "%.2e" % bl_tp, "%.2e" % cp_tp,
                  "%+.1f%%" % ((speedup(bl_tp, cp_tp) - 1) * 100))
    table.show()

    # Latency improves at every load level (the paper's headline).
    for n, (bl_lat, _), (cp_lat, _) in rows:
        assert cp_lat < bl_lat, n
    # Under saturation (4 instances on 3 app cores vs 4), Copier's
    # throughput cost is bounded (paper: -4..-7%).
    _n, (bl_lat, bl_tp), (cp_lat, cp_tp) = rows[-1]
    tput_delta = speedup(bl_tp, cp_tp) - 1
    assert -0.35 < tput_delta < 0.4, tput_delta


def test_fig14_proxy_gains_even_saturated(once):
    """Apps with copy chains (absorption saves more cycles than polling
    burns) still gain throughput at full utilization — the TinyProxy case
    (paper: +7.7% with equal cores)."""
    from repro.apps.tinyproxy import run_forwarding

    def run():
        out = {}
        for mode in ("sync", "copier"):
            system = System(n_cores=4, copier=(mode == "copier"),
                            phys_frames=262144, timeslice=20_000)
            workers = 4 if mode == "sync" else 3  # equal total cores
            total, elapsed, _p, _ = run_forwarding(
                system, mode, 64 * 1024, n_messages=8, n_workers=workers)
            out[mode] = total / elapsed
        return out

    out = once(run)
    table = ResultTable(
        "Fig 14 companion: proxy at full utilization, equal cores "
        "(paper: Copier +7.7%)",
        ["config", "mps (relative)"])
    table.add("baseline (4 proxy cores)", "%.2e" % out["sync"])
    table.add("Copier (3 proxy + 1 Copier)", "%.2e" % out["copier"])
    table.show()
    assert out["copier"] > out["sync"] * 0.95
