"""§6.1.2 CoW handling: average thread-blocking time per fault.

Paper: Copier reduces blocking time by 71.8 % for 2 MB pages and 8.0 %
for 4 KB pages (the handler copies the head with ERMS while Copier copies
the tail in parallel, §5.2).
"""

import pytest

from repro.bench.report import ResultTable, improvement
from repro.kernel import System
from repro.kernel.cow import cow_write
from repro.mem.phys import PAGE_SIZE

HUGE = 2 * 1024 * 1024


def _storm(copier, page_bytes, n_faults=6):
    """Continuously trigger CoW faults; returns mean blocking cycles."""
    system = System(n_cores=3, copier=copier,
                    phys_frames=(HUGE // PAGE_SIZE) * (n_faults + 2) * 2 + 512)
    proc = system.create_process("forker")
    length = page_bytes * n_faults
    va = proc.mmap(length, populate=True)
    proc.write(va, b"\xee" * length)
    child = proc.aspace.fork()
    mode = "copier" if copier else "sync"

    def gen():
        if copier:
            w = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(w + 512, w, 256)
            yield from proc.client.csync(w + 512, 256)
        blocked = []
        for i in range(n_faults):
            b = yield from cow_write(system, proc, va + i * page_bytes,
                                     b"w", mode=mode, page_bytes=page_bytes)
            blocked.append(b)
        return blocked

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    assert child.read(va, 4) == b"\xee" * 4  # isolation held throughout
    blocked = p.result
    return sum(blocked) / len(blocked)


def test_cow_blocking_time(once):
    def run():
        rows = []
        for label, page_bytes in (("4KB", PAGE_SIZE), ("2MB", HUGE)):
            base = _storm(False, page_bytes)
            cop = _storm(True, page_bytes)
            rows.append((label, base, cop))
        return rows

    rows = once(run)
    table = ResultTable(
        "CoW fault blocking time (cycles/fault); paper: Copier -8.0% at "
        "4KB, -71.8% at 2MB",
        ["page", "baseline", "Copier", "improvement"])
    gains = {}
    for label, base, cop in rows:
        gains[label] = improvement(base, cop)
        table.add(label, base, cop, "%.1f%%" % (gains[label] * 100))
    table.show()

    # 2MB pages: the handler/Copier split cuts blocking sharply.
    assert 0.30 < gains["2MB"] < 0.90, gains
    # 4KB pages: little to gain (submission overhead vs a 4KB copy).
    assert gains["4KB"] < 0.35, gains
    assert gains["2MB"] > gains["4KB"]
