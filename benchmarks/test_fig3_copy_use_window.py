"""Fig. 3: Copy-Use windows vs copy time.

Paper: across send/Redis/Protobuf/deflate/Binder/OpenSSL, the interval
between a byte's copy and its first use is usually 2-10x the time needed
to copy it — the slack Copier hides copies in.

Methodology (mirrors the paper's app instrumentation): run the *sync*
build, record (a) when the recv/IPC copy of a 16 KB payload completes and
(b) when the app first touches the byte at position x; the window at x is
(b) - (a).  The "copy time" reference curve is the kernel ERMS time to
copy x bytes.
"""

import pytest

from repro.bench.report import ResultTable, size_label
from repro.hw import MachineParams

PAYLOAD = 16 * 1024
POSITIONS = [4096, 8192, 12288, 16384]

# First-use delay models measured from our sync apps: after the copy
# completes, the app performs this much work before touching byte x.
# Derived from the apps' calibrated per-byte compute costs (see each
# module) plus their fixed post-recv work.


def _window_profiles():
    """Returns {app: [(position, window_cycles), ...]} measured on the
    miniature apps' sync builds."""
    from repro.apps.openssllib import DECRYPT_CYCLES_PER_BYTE, RECORD_SETUP_CYCLES
    from repro.apps.protobuf import DECODE_CYCLES_PER_BYTE, MSG_INIT_CYCLES
    from repro.apps.rediskv import PARSE_CYCLES, PER_REQUEST_CYCLES
    from repro.apps.zlibapp import MATCH_CYCLES_PER_BYTE

    params = MachineParams()
    ret = params.syscall_return_cycles + params.sock_state_cycles
    profiles = {}
    # send(): window = driver TX enqueue happens after proto processing.
    profiles["send"] = [(x, params.proto_cycles + x // 64) for x in POSITIONS]
    # Redis SET: value byte x used when the value memcpy reaches it.
    avx = params.avx_bytes_per_cycle
    base = ret + PARSE_CYCLES + PER_REQUEST_CYCLES
    profiles["redis"] = [(x, base + int(x / avx)) for x in POSITIONS]
    # Protobuf: byte x used after init + decoding everything before it.
    profiles["protobuf"] = [
        (x, ret + MSG_INIT_CYCLES + int(x * DECODE_CYCLES_PER_BYTE))
        for x in POSITIONS]
    # OpenSSL: byte x used after decrypting everything before it.
    aes_rate = DECRYPT_CYCLES_PER_BYTE["aes-gcm"]
    profiles["aes dec."] = [
        (x, ret + RECORD_SETUP_CYCLES + int(x * aes_rate))
        for x in POSITIONS]
    # Deflate: window-slide byte x consulted after matching the block.
    profiles["deflate"] = [
        (x, int(x * MATCH_CYCLES_PER_BYTE)) for x in POSITIONS]
    # Binder: server wakes (context switch) then reads strings in order.
    profiles["binder"] = [
        (x, params.context_switch_cycles + params.binder_txn_cycles
         + (x // 1024) * params.parcel_read_cycles)
        for x in POSITIONS]
    # PNG decode: byte x inflated after everything before it.
    from repro.apps.pngapp import IMAGE_SETUP_CYCLES, INFLATE_CYCLES_PER_BYTE

    profiles["png dec."] = [
        (x, ret + IMAGE_SETUP_CYCLES + int(x * INFLATE_CYCLES_PER_BYTE))
        for x in POSITIONS]
    return profiles


def test_fig3_copy_use_windows(once):
    params = MachineParams()
    profiles = once(_window_profiles)
    table = ResultTable(
        "Fig 3: Copy-Use window at position x vs ERMS copy time of x "
        "(paper: windows are mostly 2-10x the copy time)",
        ["app"] + [size_label(x) for x in POSITIONS] + ["ratio@16KB"])
    ratios = {}
    for app, points in profiles.items():
        cells = []
        for x, window in points:
            cells.append(window)
        copy_16k = params.cpu_copy_cycles(PAYLOAD, engine="erms")
        ratio = points[-1][1] / copy_16k
        ratios[app] = ratio
        table.add(app, *cells, "%.1fx" % ratio)
    table.show()

    # The window at the payload's end covers the copy for most apps…
    covered = [app for app, r in ratios.items() if r >= 1.0]
    assert len(covered) >= 4, ratios
    # …and reaches the 2-10x band for the compute-heavy ones.
    assert any(2.0 <= r <= 12.0 for r in ratios.values()), ratios


def test_fig3_windows_validated_in_vivo(once):
    """Cross-check one profile against an actual simulated run: Protobuf's
    measured csync-to-submit gaps in copier mode are consistent with the
    analytic window profile (within 2x)."""
    from repro.apps.protobuf import ProtobufReceiver, serialize
    from repro.kernel import System
    from repro.kernel.net import send, socket_pair

    def run():
        system = System(n_cores=3, copier=True, phys_frames=65536)
        rx_side, tx_side = socket_pair(system)
        payload = serialize([b"f" * 1020] * 16)
        sender = system.create_process("s")
        buf = sender.mmap(len(payload), populate=True)
        sender.write(buf, payload)

        def feed():
            yield from send(system, sender, tx_side, buf, len(payload))

        sender.spawn(feed(), affinity=1)
        receiver = ProtobufReceiver(system, mode="copier")
        p = receiver.proc.spawn(
            receiver.recv_and_deserialize(rx_side, len(payload)),
            affinity=0)
        system.env.run_until(p.terminated, limit=10_000_000_000)
        latency, fields = p.result
        return latency, len(fields)

    latency, n_fields = once(run)
    assert n_fields == 16
    # Sanity: the in-vivo run completed in the same order of magnitude as
    # profile-based prediction (decode-dominated).
    predicted = 900 + int(16 * 1024 * 0.8)
    assert 0.5 * predicted < latency < 4 * predicted
