"""§7's motivation: how many cycles does software polling burn?

The paper argues Copier could become a CPU hardware primitive to
eliminate polling cost.  This bench quantifies that cost on our
substrate: the dedicated core's cycles split into useful copy work,
management, and polling, across load levels — the polling share is the
budget a hardware doorbell would reclaim.
"""

import pytest

from repro.bench.report import ResultTable
from repro.kernel import System
from repro.sim import Timeout


def _run(load_gap_cycles, n_rounds=30):
    """One client copying 16KB with a configurable idle gap per round."""
    system = System(n_cores=3, copier=True, phys_frames=65536)
    proc = system.create_process("p")
    n = 16 * 1024
    src = proc.mmap(n, populate=True)
    dst = proc.mmap(n, populate=True)

    def gen():
        for _ in range(n_rounds):
            yield from proc.client.amemcpy(dst, src, n)
            yield from proc.client.csync(dst, n)
            if load_gap_cycles:
                yield Timeout(load_gap_cycles)

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    stats = system.env.stats
    tid = system.copier.threads[0].pid
    copy = stats.total_cycles(pid=tid, tag="copier-copy")
    mgmt = (stats.total_cycles(pid=tid, tag="copier-mgmt"))
    poll = stats.total_cycles(pid=tid, tag="poll")
    total = copy + mgmt + poll
    return copy, mgmt, poll, total


def test_polling_overhead_by_load(once):
    gaps = [0, 10_000, 100_000]

    def run():
        return [(gap,) + _run(gap) for gap in gaps]

    rows = once(run)
    table = ResultTable(
        "Copier-core cycle split by load (the polling budget a §7 "
        "hardware primitive would reclaim)",
        ["idle gap/round", "copy", "mgmt", "poll", "poll share"])
    shares = {}
    for gap, copy, mgmt, poll, total in rows:
        shares[gap] = poll / total if total else 0.0
        table.add(gap, copy, mgmt, poll, "%.1f%%" % (shares[gap] * 100))
    table.show()

    # Saturated: polling is a small tax on real work.
    assert shares[0] < 0.35
    # The busier the service, the smaller the polling share; the sleep
    # fallback bounds it even when mostly idle.
    assert shares[0] <= shares[100_000] + 0.35
    for _gap, copy, _m, _p, _t in rows:
        assert copy > 0
