"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables/figures as a text
table (paper-vs-measured) and checks the *shape* — who wins, by roughly
what factor, where crossovers fall — not absolute numbers (our substrate
is a simulator, see DESIGN.md).

Simulations are deterministic, so each measurement runs once inside
``benchmark.pedantic`` (re-running would measure Python, not the system).
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    result = {}

    def wrapper():
        result["value"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return result["value"]


@pytest.fixture
def once(benchmark):
    def _run(fn):
        return run_once(benchmark, fn)
    return _run
