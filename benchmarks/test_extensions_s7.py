"""Extension benches for the §7 applicability claims.

The discussion names file I/O, device virtualization and tiered-memory
management as further Copier beneficiaries; each gets a measurement here
(file I/O's read() path is already exercised by the PNG rows of Fig 2/3).
"""

import pytest

from repro.bench.report import ResultTable, improvement
from repro.kernel import System
from repro.kernel.tiermem import TieredMemoryManager
from repro.kernel.virtio import VirtQueue, VirtioBackend, guest_io
from repro.mem.phys import PAGE_SIZE


def _tiermem_busy(copier, n_pages=24):
    system = System(n_cores=3, copier=copier, phys_frames=4096)
    manager = TieredMemoryManager(system, fast_frames=512)
    proc = system.create_process("tier-app")
    from repro.mem.addrspace import PTE

    va = proc.mmap(PAGE_SIZE * n_pages)
    for i in range(n_pages):
        vpn = (va + i * PAGE_SIZE) // PAGE_SIZE
        frame = system.phys.alloc_frame_in(512, system.phys.n_frames)
        proc.aspace.page_table[vpn] = PTE(frame, writable=True)
        proc.write(va + i * PAGE_SIZE, bytes([i + 1]) * 32)

    def gen():
        if copier:
            w = proc.mmap(1024, populate=True)
            yield from proc.client.amemcpy(w + 512, w, 256)
            yield from proc.client.csync(w + 512, 256)
        vas = [va + i * PAGE_SIZE for i in range(n_pages)]
        return (yield from manager.migrate_batch(
            proc, vas, to_fast=True, mode="copier" if copier else "sync"))

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    for i in range(n_pages):
        assert proc.read(va + i * PAGE_SIZE, 32) == bytes([i + 1]) * 32
    return p.result


def _virtio_write_latency(mode, n=64 * 1024, rounds=4):
    system = System(n_cores=3, copier=(mode == "copier"),
                    phys_frames=65536)
    guest = system.create_process("guest")
    queue = VirtQueue(system, guest)
    backend = VirtioBackend(system, queue, mode=mode)
    wbuf = guest.mmap(n, populate=True)
    guest.write(wbuf, b"\x6e" * n)
    backend.proc.spawn(backend.run(rounds), affinity=1)

    def gen():
        if mode == "copier":
            w = backend.proc.mmap(1024, populate=True)
            yield from backend.proc.client.amemcpy(w + 512, w, 256)
            yield from backend.proc.client.csync(w + 512, 256)
        total = 0
        for i in range(rounds):
            total += yield from guest_io(system, guest, queue, i, wbuf, n,
                                         write=True)
        return total / rounds

    p = system.env.spawn(gen(), name="vcpu", affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return p.result


def test_s7_tiered_memory_migration(once):
    sync_busy, copier_busy = once(lambda: (_tiermem_busy(False),
                                           _tiermem_busy(True)))
    table = ResultTable(
        "§7 tiered memory: manager busy cycles migrating 24 pages",
        ["mode", "busy cycles"])
    table.add("baseline (sync ERMS)", sync_busy)
    table.add("Copier (pipelined)", copier_busy)
    table.show()
    gain = improvement(sync_busy, copier_busy)
    assert 0.0 < gain < 0.8, gain


def test_s7_virtio_payload_copies(once):
    sync_lat, copier_lat = once(lambda: (
        _virtio_write_latency("sync"), _virtio_write_latency("copier")))
    table = ResultTable(
        "§7 device virtualization: guest 64KB write latency",
        ["mode", "latency (cycles)"])
    table.add("baseline backend", sync_lat)
    table.add("Copier backend", copier_lat)
    table.show()
    assert copier_lat < sync_lat
