"""Fig. 12: TinyProxy throughput, scalability, and the design breakdown.

* (a) forwarding throughput: Copier +7.2-32.3 % vs baseline; zIO at most
  +11.6 % (one user copy only) and only for >=16 KB messages;
* (b) multithreading scalability with per-process queues;
* (c) breakdown: async alone dominates for small copies; hardware and
  absorption matter for large ones.
"""

import pytest

from repro.apps.tinyproxy import run_forwarding
from repro.bench.report import ResultTable, size_label, speedup
from repro.kernel import System

MSG_SIZES = [4096, 16384, 65536]
N_MSG = 10


def _mps(mode, msg_bytes, n_workers=1, n_cores=4, copier_kwargs=None,
         n_messages=N_MSG):
    system = System(n_cores=n_cores, copier=(mode == "copier"),
                    phys_frames=262144, copier_kwargs=copier_kwargs)
    total, elapsed, proxies, _ = run_forwarding(
        system, mode, msg_bytes, n_messages, n_workers=n_workers)
    return total / elapsed


def test_fig12a_forwarding_throughput(once):
    def run():
        rows = []
        for size in MSG_SIZES:
            rows.append((size, _mps("sync", size), _mps("copier", size),
                         _mps("zio", size)))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 12-a: TinyProxy throughput (messages/cycle, relative); "
        "paper: Copier +7.2..+32.3%, zIO <= +11.6% and >=16KB only",
        ["size", "baseline", "Copier", "zIO", "Copier gain", "zIO gain"])
    for size, base, cop, zio in rows:
        table.add(size_label(size), "%.2e" % base, "%.2e" % cop,
                  "%.2e" % zio,
                  "%+.1f%%" % ((speedup(base, cop) - 1) * 100),
                  "%+.1f%%" % ((speedup(base, zio) - 1) * 100))
    table.show()

    for size, base, cop, zio in rows:
        assert cop > base, size
        assert cop > zio, size  # Copier handles the kernel copies too
    gains = [speedup(b, c) - 1 for _s, b, c, _z in rows]
    assert 0.03 < max(gains) < 0.9, gains


def test_fig12b_multithread_scaling(once):
    """Paper: scales to 16 threads and >130K tasks/queue/second."""
    HZ = 2.9e9

    def run():
        rows = []
        for workers in (1, 2, 4, 8, 16):
            system = System(n_cores=20, copier=True, phys_frames=524288)
            total, elapsed, proxies, _ = run_forwarding(
                system, "copier", 8 * 1024, 8, n_workers=workers)
            mps = total / elapsed
            # Submission rate per proxy queue, converted to wall-clock.
            tasks = sum(p.proc.client.stats.submitted for p in proxies)
            tasks_per_queue_s = (tasks / workers) / (elapsed / HZ)
            rows.append((workers, mps, tasks_per_queue_s))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 12-b: Copier proxy scalability (paper: scales to 16 threads, "
        ">130K tasks/queue/s)",
        ["workers", "mps (relative)", "speedup vs 1", "tasks/queue/s"])
    base = rows[0][1]
    for workers, mps, tqs in rows:
        table.add(workers, "%.2e" % mps, "%.2fx" % (mps / base),
                  "%.0f" % tqs)
    table.show()

    by = {w: mps for w, mps, _t in rows}
    assert by[2] > by[1] * 1.4    # 2 workers ≈ 2x
    assert by[4] > by[1] * 2.2    # 4 workers scale on
    assert by[16] > by[8] * 1.02  # still improving at 16
    # Per-queue submission rate clears the paper's 130K/s bar.
    assert all(tqs > 130_000 for _w, _m, tqs in rows)


@pytest.mark.parametrize("size", [1024, 262144])
def test_fig12c_breakdown(once, size):
    """Design breakdown: async-only vs +hardware vs +absorption.

    Paper: at 1 KB async copy dominates (fully overlappable); at 256 KB
    hardware and absorption matter significantly.
    """
    def run():
        base = _mps("sync", size, n_messages=8)
        async_only = _mps("copier", size, n_messages=8,
                          copier_kwargs={"use_dma": False,
                                         "use_absorption": False})
        plus_hw = _mps("copier", size, n_messages=8,
                       copier_kwargs={"use_dma": True,
                                      "use_absorption": False})
        full = _mps("copier", size, n_messages=8)
        return base, async_only, plus_hw, full

    base, async_only, plus_hw, full = once(run)
    table = ResultTable(
        "Fig 12-c breakdown at %s (throughput gain over baseline)"
        % size_label(size),
        ["config", "gain"])
    table.add("async only", "%+.1f%%" % ((speedup(base, async_only) - 1) * 100))
    table.add("+ hardware", "%+.1f%%" % ((speedup(base, plus_hw) - 1) * 100))
    table.add("+ absorption", "%+.1f%%" % ((speedup(base, full) - 1) * 100))
    table.show()

    assert full >= base
    if size >= 262144:
        # Large copies: absorption adds on top of async+hardware.
        assert full > async_only
