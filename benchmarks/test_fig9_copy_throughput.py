"""Fig. 9: Copier's copy throughput vs kernel ERMS and user AVX2.

Paper: Copier (parallel AVX+DMA) beats ERMS by up to 158 % (55 % at 4 KB)
and AVX2 by up to 38 % (33 % at 4 KB) with no buffer repetition; with 75 %
repetition the baselines close part of the gap (warm TLB/caches) and the
ATCache contributes an extra 2-11 % to Copier.
"""

import pytest

from repro.bench.report import ResultTable, size_label, speedup
from repro.bench.workloads import raw_copy_throughput

SIZES = [4096, 16384, 65536, 262144]


@pytest.mark.parametrize("repetition", [0.0, 0.75])
def test_fig9_throughput(once, repetition):
    def run():
        rows = []
        for size in SIZES:
            n_tasks = max(6, min(24, (1 << 22) // size))
            erms = raw_copy_throughput("erms", size, n_tasks, repetition)
            avx = raw_copy_throughput("avx", size, n_tasks, repetition)
            cop = raw_copy_throughput("copier", size, n_tasks, repetition)
            rows.append((size, erms, avx, cop))
        return rows

    rows = once(run)
    table = ResultTable(
        "Fig 9 (repetition=%d%%): copy throughput (bytes/cycle)"
        % int(repetition * 100),
        ["size", "ERMS", "AVX2", "Copier", "vs ERMS", "vs AVX2"])
    for size, erms, avx, cop in rows:
        table.add(size_label(size), erms, avx, cop,
                  "%+.0f%%" % ((speedup(erms, cop) - 1) * 100),
                  "%+.0f%%" % ((speedup(avx, cop) - 1) * 100))
    table.show()

    for size, erms, avx, cop in rows:
        if size >= 16384:
            assert cop > erms, (size, "Copier must beat kernel ERMS")
    # Peak gain over ERMS is large (paper: up to +158 %).
    best_vs_erms = max(speedup(erms, cop) for _s, erms, _a, cop in rows)
    assert best_vs_erms > 1.5
    # Copier also beats plain AVX2 at large sizes (paper: up to +38 %).
    big = [r for r in rows if r[0] >= 65536]
    assert any(cop > avx for _s, _e, avx, cop in big)


def test_fig9_atcache_contribution(once):
    """ATCache adds a few percent under buffer repetition (paper: 2-11 %)."""
    size = 65536

    def run():
        with_at = raw_copy_throughput("copier", size, 16, repetition=0.75,
                                      atcache=True)
        without_at = raw_copy_throughput("copier", size, 16, repetition=0.75,
                                         atcache=False)
        return with_at, without_at

    with_at, without_at = once(run)
    table = ResultTable("Fig 9 ablation: ATCache at 75% repetition",
                        ["config", "bytes/cycle"])
    table.add("ATCache on", with_at)
    table.add("ATCache off", without_at)
    table.show()
    gain = speedup(without_at, with_at) - 1
    assert 0.0 < gain < 0.30, gain
