#!/usr/bin/env python
"""Quickstart: async copy with Copier in five minutes.

Builds a 4-core simulated machine with the Copier service on the last
core, then walks through the programming model of Fig. 4:

1. ``amemcpy`` — submit an asynchronous copy and keep computing;
2. ``csync`` — make a prefix of the data consistent right before use;
3. post-copy handlers — delegate the ``free(src)`` to Copier;
4. the payoff — the copy ran while your code was busy doing real work.

Run:  python examples/quickstart.py
"""

from repro.api import LibCopier
from repro.kernel import System
from repro.sim import Compute


def main():
    system = System(n_cores=4, copier=True, phys_frames=65536)
    proc = system.create_process("quickstart")
    lib = LibCopier(proc)

    n = 256 * 1024
    src = proc.mmap(n, populate=True, contiguous=True)
    dst = proc.mmap(n, populate=True, contiguous=True)
    proc.write(src, bytes([i % 251 for i in range(n)]))
    freed = []

    def app():
        # --- the old, blocking way (for comparison) -------------------
        t0 = system.env.now
        yield from system.sync_copy(proc, proc.aspace, src,
                                    proc.aspace, dst, n, engine="avx")
        yield Compute(50_000)  # pretend to work on the data
        sync_total = system.env.now - t0

        # --- the Copier way --------------------------------------------
        t0 = system.env.now
        # Submit and immediately continue; a UFUNC will "free" src later.
        yield from lib._amemcpy(dst, src, n,
                                func=("ufunc", freed.append, (src,)))
        yield Compute(50_000)  # the copy overlaps this work
        # Only sync the prefix we need right now (copy-use pipeline):
        yield from lib.csync(dst, 4096)
        first_page = proc.read(dst, 16)
        # ...and the rest before we finish.
        yield from lib.csync(dst, n)
        yield from lib.post_handlers()  # runs the delegated free
        async_total = system.env.now - t0
        return sync_total, async_total, first_page

    p = proc.spawn(app(), affinity=0)
    system.env.run_until(p.terminated, limit=10_000_000_000)
    sync_total, async_total, first_page = p.result

    print("payload intact:      %s" % (proc.read(dst, n) == proc.read(src, n)))
    print("handler ran (freed): %s" % (freed == [src]))
    print("first bytes:         %s..." % first_page.hex()[:16])
    print("sync  copy + work:   %7d cycles" % sync_total)
    print("async copy + work:   %7d cycles  (%.0f%% faster)"
          % (async_total, (1 - async_total / sync_total) * 100))
    print("bytes via DMA:       %d" % system.copier.dma.bytes_copied)


if __name__ == "__main__":
    main()
