#!/usr/bin/env python
"""Copier on the smartphone profile: scenario-driven video decode (§5.3).

Replays the HarmonyOS Avcodec experiment (Fig. 13-c): a video decoder on
the Kirin-flavored machine profile, with the Copier service in
scenario-driven polling mode — active only while the decode scenario
runs, asleep otherwise, so the energy cost stays marginal.

Run:  python examples/phone_video.py
"""

from repro.apps.avcodec import VideoDecoder, VideoRecorder, measure_energy
from repro.bench.report import ResultTable
from repro.hw.params import phone_params
from repro.kernel import System


def run(mode, n_frames=12):
    system = System(n_cores=3, params=phone_params(),
                    copier=(mode == "copier"),
                    copier_kwargs={"polling": "scenario"},
                    phys_frames=131072)
    decoder = VideoDecoder(system, mode=mode, frame_bytes=1 << 20)
    p = decoder.proc.spawn(decoder.decode_stream(n_frames), affinity=0)
    system.env.run_until(p.terminated, limit=5_000_000_000_000)
    return decoder, measure_energy(system), system


def main():
    sync_dec, sync_energy, _s1 = run("sync")
    cop_dec, cop_energy, s2 = run("copier")

    table = ResultTable("Video decode on the phone profile (Fig. 13-c)",
                        ["metric", "baseline", "Copier"])
    table.add("mean frame latency (cycles)",
              "%.0f" % sync_dec.mean_latency,
              "%.0f" % cop_dec.mean_latency)
    table.add("frames dropped", sync_dec.dropped, cop_dec.dropped)
    table.add("energy (arb. units)", "%.3e" % sync_energy,
              "%.3e" % cop_energy)
    table.show()
    gain = 1 - cop_dec.mean_latency / sync_dec.mean_latency
    print("\nframe latency reduction: %.1f%% (paper: 3-10%%)" % (gain * 100))
    print("energy delta:            %+.2f%% (paper: +0.07..+0.29%%)"
          % ((cop_energy / sync_energy - 1) * 100))
    print("Copier asleep after playback: %s"
          % (not s2.copier.scenario_active))

    # Camera recording: the other copy-heavy phone scenario (Fig. 2-b).
    rec_lat = {}
    for mode in ("sync", "copier"):
        system = System(n_cores=3, params=phone_params(),
                        copier=(mode == "copier"),
                        copier_kwargs={"polling": "scenario"},
                        phys_frames=131072)
        recorder = VideoRecorder(system, mode=mode, frame_bytes=1 << 20)
        p = recorder.proc.spawn(recorder.record(8), affinity=0)
        system.env.run_until(p.terminated, limit=5_000_000_000_000)
        rec_lat[mode] = recorder.mean_latency
    rec_gain = 1 - rec_lat["copier"] / rec_lat["sync"]
    print("recording frame latency: %.0f -> %.0f cycles (%.1f%% faster)"
          % (rec_lat["sync"], rec_lat["copier"], rec_gain * 100))


if __name__ == "__main__":
    main()
