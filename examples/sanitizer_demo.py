#!/usr/bin/env python
"""CopierSanitizer finding a missing csync (§5.1.2) + CopierGen fixing it.

Shows the toolchain workflow the paper describes for porting:

1. a buggy port reads an async-copy destination without csync;
2. CopierSanitizer's shadow memory catches both the premature read and
   the free-before-csync of the source (the Fig. 4 copyUse bug);
3. CopierGen's csync-insertion pass ports the same program mechanically,
   and the sanitizer comes back clean.

Run:  python examples/sanitizer_demo.py
"""

from repro.tools.copiergen import Program, port_program
from repro.tools.copiergen.ir import op
from repro.tools.sanitizer import CopierSanitizer


def main():
    # The buggy program: copy, then use dst and free src with no csync.
    buggy = Program([
        op("memcpy", ("B", 0), ("A", 0), 4096),
        op("load", "x", ("B", 100), 8),    # BUG: dst read before csync
        op("free", ("A", 0), 4096),        # BUG: src freed before csync
    ])

    print("1) Running the buggy port under CopierSanitizer:")
    san = CopierSanitizer()
    _simulate(buggy, san)
    for report in san.summary():
        print("   REPORT:", report)
    assert len(san.reports) == 2

    print("\n2) CopierGen ports the program (csync insertion pass):")
    ported = port_program(buggy)
    for operation in ported:
        print("   ", operation)

    print("\n3) Sanitizer on the ported program:")
    san2 = CopierSanitizer()
    _simulate(ported, san2)
    print("   reports: %d (clean)" % len(san2.reports))
    assert not san2.reports


def _simulate(program, san):
    """Feed the IR's accesses through the sanitizer's shadow memory."""
    base = {"A": 0x10000, "B": 0x20000, "C": 0x30000}

    def addr(a):
        return base[a[0]] + a[1]

    for operation in program:
        kind = operation[0]
        if kind in ("memcpy", "amemcpy"):
            _k, dst, src, n = operation
            san.on_amemcpy(addr(dst), addr(src), n)
        elif kind == "csync":
            _k, a, n = operation
            san.on_csync(addr(a), n)
            # csync through the dst also releases the matching src bytes.
            san.release_source(base["A"] + a[1], n)
        elif kind == "load":
            _k, _var, a, n = operation
            san.read(addr(a), n)
        elif kind == "store":
            _k, a, n = operation
            san.write(addr(a), n)
        elif kind == "free":
            _k, a, n = operation
            san.free(addr(a), n)


if __name__ == "__main__":
    main()
