#!/usr/bin/env python
"""One service, many kernel subsystems (§5.2 + §7 tour).

Runs four OS services back to back on the same machine, each in baseline
and Copier mode, and prints the per-service gain:

1. CoW fault handling (2 MB huge pages) — the §5.2 handler/Copier split;
2. sendfile vs read+send — the in-kernel file path (Table 1);
3. tiered-memory batch migration (§7);
4. a virtio backend's guest-write path (§7).

Run:  python examples/os_services.py
"""

from repro.bench.report import ResultTable, improvement
from repro.kernel import FileObject, System, sendfile, socket_pair
from repro.kernel.cow import cow_write
from repro.kernel.fileio import file_read
from repro.kernel.net import send
from repro.kernel.tiermem import TieredMemoryManager
from repro.kernel.virtio import VirtQueue, VirtioBackend, guest_io
from repro.mem.phys import PAGE_SIZE

HUGE = 2 * 1024 * 1024


def warm(proc):
    w = proc.mmap(1024, populate=True)
    yield from proc.client.amemcpy(w + 512, w, 256)
    yield from proc.client.csync(w + 512, 256)


def cow_case(copier):
    system = System(n_cores=3, copier=copier, phys_frames=4096)
    proc = system.create_process("forker")
    va = proc.mmap(HUGE, populate=True)
    proc.write(va, b"\xaa" * 64)
    proc.aspace.fork()

    def gen():
        if copier:
            yield from warm(proc)
        return (yield from cow_write(system, proc, va, b"w",
                                     mode="copier" if copier else "sync",
                                     page_bytes=HUGE))

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return p.result


def file_case(use_sendfile):
    system = System(n_cores=3, copier=False, phys_frames=65536)
    proc = system.create_process("web")
    sock, _peer = socket_pair(system)
    n = 128 * 1024
    fobj = FileObject(system, b"asset" * (n // 5))

    def gen():
        t0 = system.env.now
        if use_sendfile:
            yield from sendfile(system, proc, fobj, 0, sock, n)
        else:
            buf = proc.mmap(n, populate=True)
            yield from file_read(system, proc, fobj, 0, buf, n)
            yield from send(system, proc, sock, buf, n)
        return system.env.now - t0

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return p.result


def tiermem_case(copier):
    from repro.mem.addrspace import PTE

    system = System(n_cores=3, copier=copier, phys_frames=4096)
    manager = TieredMemoryManager(system, fast_frames=512)
    proc = system.create_process("tier")
    n_pages = 16
    va = proc.mmap(PAGE_SIZE * n_pages)
    for i in range(n_pages):
        frame = system.phys.alloc_frame_in(512, system.phys.n_frames)
        proc.aspace.page_table[(va // PAGE_SIZE) + i] = PTE(frame, True)

    def gen():
        if copier:
            yield from warm(proc)
        vas = [va + i * PAGE_SIZE for i in range(n_pages)]
        return (yield from manager.migrate_batch(
            proc, vas, to_fast=True, mode="copier" if copier else "sync"))

    p = proc.spawn(gen(), affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return p.result


def virtio_case(copier):
    system = System(n_cores=3, copier=copier, phys_frames=65536)
    guest = system.create_process("guest")
    queue = VirtQueue(system, guest)
    backend = VirtioBackend(system, queue,
                            mode="copier" if copier else "sync")
    n = 64 * 1024
    wbuf = guest.mmap(n, populate=True)
    backend.proc.spawn(backend.run(3), affinity=1)

    def gen():
        if copier:
            yield from warm(backend.proc)
        total = 0
        for i in range(3):
            total += yield from guest_io(system, guest, queue, i, wbuf, n,
                                         write=True)
        return total / 3

    p = system.env.spawn(gen(), name="vcpu", affinity=0)
    system.env.run_until(p.terminated, limit=500_000_000_000)
    return p.result


def main():
    table = ResultTable("OS services, baseline vs Copier (cycles)",
                        ["service", "baseline", "Copier/opt", "gain"])
    rows = [
        ("CoW fault (2MB)", cow_case(False), cow_case(True)),
        ("file serve 128KB", file_case(False), file_case(True)),
        ("tiered migrate x16", tiermem_case(False), tiermem_case(True)),
        ("virtio write 64KB", virtio_case(False), virtio_case(True)),
    ]
    for name, base, opt in rows:
        table.add(name, base, opt,
                  "%.1f%%" % (improvement(base, opt) * 100))
    table.show()
    print("\n(file serve compares read+send vs sendfile — the Table 1")
    print(" in-kernel path; the others compare sync vs Copier.)")


if __name__ == "__main__":
    main()
