#!/usr/bin/env python
"""A gRPC-style framework ported once, benefiting every app (§5.1.1).

The RPC framework uses Copier's low-level APIs internally (per-thread
queues, descriptor reuse, async send/recv); applications register plain
handlers and get the speedup for free.  Ends with a CopierStat report of
what the service did.

Run:  python examples/rpc_framework.py
"""

from repro.apps.rpc import run_rpc_benchmark
from repro.bench.report import ResultTable, size_label
from repro.kernel import System
from repro.tools.copierstat import report


def main():
    table = ResultTable("Unary RPC latency through the framework",
                        ["payload", "mode", "mean latency (cycles)"])
    last_copier_system = None
    for payload in (8 * 1024, 32 * 1024, 128 * 1024):
        for mode in ("sync", "copier"):
            system = System(n_cores=4, copier=(mode == "copier"),
                            phys_frames=262144)
            _server, mean, _elapsed = run_rpc_benchmark(
                system, mode, payload, n_requests=8, n_connections=2)
            table.add(size_label(payload), mode, mean)
            if mode == "copier":
                last_copier_system = system
    table.show()
    print()
    print(report(last_copier_system.copier))


if __name__ == "__main__":
    main()
