#!/usr/bin/env python
"""A Redis-style KV server accelerated by Copier (the §6.2.1 scenario).

Runs the same SET/GET workload against the baseline (synchronous copies)
and the Copier port (lazy recv + absorption + async send), printing the
per-mode latency/throughput — a miniature Fig. 11.

Run:  python examples/redis_server.py
"""

from repro.apps.rediskv import run_benchmark
from repro.bench.report import ResultTable, size_label
from repro.kernel import System


def main():
    table = ResultTable(
        "Redis SET/GET, 8 closed-loop clients (miniature Fig. 11)",
        ["op", "value", "mode", "mean lat (cyc)", "p99 (cyc)",
         "throughput (req/Mcyc)"])
    for op in ("SET", "GET"):
        for value_len in (4096, 16384, 65536):
            for mode in ("sync", "copier"):
                system = System(n_cores=4, copier=(mode == "copier"),
                                phys_frames=262144)
                server, merged, elapsed = run_benchmark(
                    system, mode, op, value_len,
                    n_requests=12, n_clients=8)
                table.add(op, size_label(value_len), mode,
                          merged.mean, merged.p99,
                          merged.count / (elapsed / 1e6))
                if mode == "copier":
                    absorbed = server.proc.client.stats.bytes_absorbed
                    print("  [%s %s] absorbed %.1f KB of intermediate "
                          "copies" % (op, size_label(value_len),
                                      absorbed / 1024))
    table.show()


if __name__ == "__main__":
    main()
