#!/usr/bin/env python
"""The §4.4 proxy pipeline: lazy copy + absorption + abort, end to end.

A TinyProxy-style forwarder reads messages, inspects only the headers,
and sends them upstream.  With Copier the three copies (kernel→in,
in→out, out→kernel) collapse into one short-circuit copy — this example
prints how many bytes were absorbed and the resulting throughput gain.

Run:  python examples/proxy_pipeline.py
"""

from repro.apps.tinyproxy import run_forwarding
from repro.bench.report import ResultTable, size_label
from repro.kernel import System


def main():
    table = ResultTable(
        "HTTP forwarding through the proxy (miniature Fig. 12-a)",
        ["message", "mode", "msgs/Mcycle", "absorbed KB"])
    for msg_bytes in (8 * 1024, 32 * 1024, 128 * 1024):
        for mode in ("sync", "copier", "zio"):
            system = System(n_cores=4, copier=(mode == "copier"),
                            phys_frames=262144)
            total, elapsed, proxies, _ = run_forwarding(
                system, mode, msg_bytes, n_messages=12)
            absorbed = 0
            if mode == "copier":
                absorbed = proxies[0].proc.client.stats.bytes_absorbed
            table.add(size_label(msg_bytes), mode,
                      "%.2f" % (total / (elapsed / 1e6)),
                      "%.0f" % (absorbed / 1024))
    table.show()
    print("\nabsorbed KB counts bytes that skipped the intermediate user")
    print("buffers entirely (kernel->kernel short-circuit, §4.4).")


if __name__ == "__main__":
    main()
